//! Scaling microbenchmark for the parallel executors: plans at
//! `Parallelism::Off` vs `Parallelism::Threads(k)` across a thread axis,
//! for a 1D, a 2D-star and a 3D-star untiled workload plus a temporally
//! tiled family (tessellation over multiple-loads vectorization, hybrid
//! split over DLT) whose `off` baseline is the *tiled-sequential*
//! schedule — so its speedup column isolates the wavefront scheduler.
//! All workloads compile through the erased API ([`Plan::stencil`]), so
//! the families are one loop over [`StencilSpec`]s instead of copies of
//! the driver.
//!
//! Every parallel result is verified **bit-identical** to the scalar
//! oracle before its time is reported — a speedup that changes bits is a
//! bug, not a result (the process exits non-zero on any mismatch).
//!
//! ```sh
//! cargo run --release --bin scaling [-- --smoke] [--threads=4] [--save-json] [--phases]
//! ```
//!
//! `--threads=N` restricts the axis to `{1, N}`; the default axis is
//! 1, 2, 4, ... up to every available core. `--phases` prints the
//! staged tiled drivers' phase breakdown (stage-in / compute /
//! stage-out / halo) for each tiled cell — all zeros for untiled and
//! natural-layout tiled rows, which never enter the staging arena.
//! Cells whose thread count exceeds the host's available parallelism
//! (the boundary family's fixed {2, 7} axis on a small host) carry a
//! `"saturated": true` field in the saved rows, so trajectory tooling
//! can discount oversubscribed measurements.

use stencil_bench::save::{Row, Value};
use stencil_bench::{any_grid_dtype, best_of, gflops, Cli, Scale};
use stencil_core::exec::{Parallelism, Plan, Shape, Tiling};
use stencil_core::verify::max_abs_diff_any;
use stencil_core::{Method, StencilSpec};
use stencil_simd::Isa;

/// Thread counts to sweep: powers of two up to the host core count (the
/// host count itself always included), or `{1, N}` under `--threads=N`.
fn thread_axis(cli: &Cli) -> Vec<usize> {
    if let Some(n) = cli.threads() {
        let mut v = vec![1];
        if n > 1 {
            v.push(n);
        }
        return v;
    }
    let m = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut v: Vec<usize> = (0..).map(|p| 1usize << p).take_while(|&t| t <= m).collect();
    if v.last() != Some(&m) {
        v.push(m);
    }
    v
}

/// One workload: name (boundary and tiling encoded in it), shape, step
/// count, seed, method, and the temporal tiling (`None` = untiled).
type Workload = (&'static str, Shape, usize, u64, Method, Option<Tiling>);

struct Cell {
    workload: String,
    /// `Some("f32")` for the narrow-element rows: the saved row then
    /// carries the *base* workload name plus a `dtype` field, so
    /// bench_gate's dtype-speedup check pairs it with the f64 sibling
    /// sharing the rest of its identity.
    dtype: Option<&'static str>,
    threads: usize, // 0 encodes Parallelism::Off
    /// Thread count exceeds the host's available parallelism — the
    /// measurement is oversubscribed and saved with `"saturated": true`.
    saturated: bool,
    secs: f64,
    gf: f64,
}

fn report(cells: &[Cell], rows: &mut Vec<Row>) {
    let off = cells
        .iter()
        .find(|c| c.threads == 0)
        .expect("Off baseline measured first");
    for c in cells {
        let label = if c.threads == 0 {
            "off".to_string()
        } else {
            c.threads.to_string()
        };
        let speedup = off.secs / c.secs;
        let shown = match c.dtype {
            Some(d) => format!("{}@{d}", c.workload),
            None => c.workload.clone(),
        };
        println!(
            "{:<10} {:>7} {:>11.2} ms {:>9.2} GF/s {:>8.2}x",
            shown,
            label,
            c.secs * 1e3,
            c.gf,
            speedup,
        );
        let mut row = vec![
            ("workload", Value::Str(c.workload.clone())),
            ("threads", Value::Str(label)),
        ];
        if let Some(d) = c.dtype {
            row.push(("dtype", Value::from(d)));
        }
        if c.saturated {
            row.push(("saturated", Value::from(true)));
        }
        row.extend([
            ("seconds", Value::from(c.secs)),
            ("gflops", Value::from(c.gf)),
            ("speedup_vs_off", Value::from(speedup)),
        ]);
        rows.push(row);
    }
}

fn main() {
    stencil_bench::banner("scaling: untiled domain decomposition, Off vs Threads(k)");
    let cli = Cli::parse();
    let isa = Isa::detect_best();
    let smoke = cli.scale() == Scale::Smoke;
    let axis = thread_axis(&cli);
    let phases = cli.flag("--phases");
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let reps = if smoke { 2 } else { 3 };
    let mut rows: Vec<Row> = Vec::new();
    let mut bit_failures = 0usize;
    println!(
        "\n{:<10} {:>7} {:>14} {:>14} {:>9}",
        "workload", "threads", "time", "rate", "vs off"
    );

    // One TransLayout workload per dimensionality: identical per-step
    // kernel under Off and Threads(k) — pure decomposition scaling. The
    // 2D cell is the acceptance workload: a ≥4-core host should show
    // ≥2.5x at 4 threads over Off.
    // The `@f32` workloads are the dtype row family: the same shapes
    // and step counts at half the element width (the initial grids are
    // the f32 roundings of the f64 siblings' cells — same seeds). Their
    // rows carry the base workload name plus a `dtype` field, so
    // bench_gate pairs each with its f64 sibling for the dtype-speedup
    // check; they sweep the full thread axis like the siblings.
    // The `@boundary` workloads are the boundary row family: identical
    // decomposition plus the wrap/mirror halo refresh, fused into each
    // band's sweep (no extra barrier), still verified bit-identical
    // against the scalar oracle running the same boundary. They run a
    // fixed {2, 7} thread axis — an even divisor plus a non-divisible
    // split — so the per-band seam refresh cost is tracked regardless
    // of the host's core count.
    let workloads: &[(&str, Shape, usize, u64)] = if smoke {
        &[
            ("1d3p", Shape::d1(500_000), 12, 41),
            ("2d5p", Shape::d2(512, 256), 10, 42),
            ("3d7p", Shape::d3(64, 64, 64), 6, 43),
            ("2d5p@periodic", Shape::d2(512, 256), 10, 44),
            ("3d7p@reflect", Shape::d3(64, 64, 64), 6, 45),
            ("1d3p@f32", Shape::d1(500_000), 12, 41),
            ("2d5p@f32", Shape::d2(512, 256), 10, 42),
            ("3d7p@f32", Shape::d3(64, 64, 64), 6, 43),
        ]
    } else {
        &[
            ("1d3p", Shape::d1(4_000_000), 40, 41),
            ("2d5p", Shape::d2(2_000, 1_000), 40, 42),
            ("3d7p", Shape::d3(192, 192, 192), 10, 43),
            ("2d5p@periodic", Shape::d2(2_000, 1_000), 40, 44),
            ("3d7p@reflect", Shape::d3(192, 192, 192), 10, 45),
            ("1d3p@f32", Shape::d1(4_000_000), 40, 41),
            ("2d5p@f32", Shape::d2(2_000, 1_000), 40, 42),
            ("3d7p@f32", Shape::d3(192, 192, 192), 10, 43),
        ]
    };

    // The tiled family: temporal tiling under the wavefront scheduler,
    // tiled-sequential (`off`) vs Threads(k) — the speedup column is the
    // scheduler's contribution alone, since both sides run the identical
    // tile decomposition. Like the untiled boundary rows, the boundary
    // lives in the workload *name* (not a `boundary` field): a tiled
    // schedule has no untiled Dirichlet sibling of matching identity, so
    // the gate's parity pairing must not see these rows. The 2D shapes
    // are the L2/L3-resident acceptance rows (~2 MB working set in
    // smoke): tiled-parallel must beat tiled-sequential at 2 threads.
    // Tile geometry follows fig9's tuning direction: wide tiles and a
    // tall time chunk, so the per-tile scheduling cost amortizes over
    // real temporal reuse while still leaving a tile grid for the
    // wavefront to distribute. The tess-paired `2d5p` rows use
    // 256-wide tiles: the staged transpose layout partitions each row
    // into vl^2-cell sets, and a 128-wide tile holds exactly two f64
    // AVX-512 sets — every set an edge set, the worst case for the
    // `(tl2)` side of the pair — while 256 leaves interior sets the
    // way a production tile size would. The `2d5p+tess(tl2)` row
    // tracks the TL-under-tessellation gap through the tile-resident
    // staging arena; the tess-parity gate check pins it within 2.5x of
    // the MultiLoad row sharing the same tile geometry.
    // The `3d7p+tess(tl2)` / `+tess` pair extends the same tracking to
    // 3D, and `2d5p+tess(tl2)@f32` to the narrow element type; the gate
    // pairs each `(tl2)` row with the MultiLoad row of identical tile
    // geometry (see `gate::tess_parity`).
    let tess = |wx: usize, wy: usize, h: usize| Tiling::Tessellate {
        w: [wx, wy, 0],
        h,
        threads: 1,
    };
    let tess3 = |wx: usize, wy: usize, wz: usize, h: usize| Tiling::Tessellate {
        w: [wx, wy, wz],
        h,
        threads: 1,
    };
    let split = |w: usize, h: usize| Tiling::Split { w, h, threads: 1 };
    let tiled: &[(&str, Shape, usize, u64, Method, Tiling)] = if smoke {
        &[
            (
                "2d5p+tess",
                Shape::d2(512, 256),
                10,
                46,
                Method::MultiLoad,
                tess(256, 64, 10),
            ),
            (
                "2d5p@periodic+tess",
                Shape::d2(512, 256),
                10,
                47,
                Method::MultiLoad,
                tess(128, 64, 10),
            ),
            (
                "2d9p@reflect+split",
                Shape::d2(512, 256),
                10,
                48,
                Method::Dlt,
                split(64, 10),
            ),
            (
                "2d5p+tess(tl2)",
                Shape::d2(512, 256),
                10,
                46,
                Method::TransLayout2,
                tess(256, 64, 10),
            ),
            (
                "2d5p@f32+tess(tl2)",
                Shape::d2(512, 256),
                10,
                46,
                Method::TransLayout2,
                tess(256, 64, 10),
            ),
            (
                "3d7p+tess",
                Shape::d3(64, 64, 64),
                6,
                49,
                Method::MultiLoad,
                tess3(32, 16, 16, 4),
            ),
            (
                "3d7p+tess(tl2)",
                Shape::d3(64, 64, 64),
                6,
                49,
                Method::TransLayout2,
                tess3(32, 16, 16, 4),
            ),
        ]
    } else {
        &[
            (
                "2d5p+tess",
                Shape::d2(2_000, 1_000),
                40,
                46,
                Method::MultiLoad,
                tess(200, 200, 40),
            ),
            (
                "2d5p@periodic+tess",
                Shape::d2(2_000, 1_000),
                40,
                47,
                Method::MultiLoad,
                tess(200, 200, 40),
            ),
            (
                "2d9p@reflect+split",
                Shape::d2(2_000, 1_000),
                40,
                48,
                Method::Dlt,
                split(200, 40),
            ),
            (
                "2d5p+tess(tl2)",
                Shape::d2(2_000, 1_000),
                40,
                46,
                Method::TransLayout2,
                tess(200, 200, 40),
            ),
            (
                "2d5p@f32+tess(tl2)",
                Shape::d2(2_000, 1_000),
                40,
                46,
                Method::TransLayout2,
                tess(200, 200, 40),
            ),
            (
                "3d7p+tess",
                Shape::d3(192, 192, 192),
                10,
                49,
                Method::MultiLoad,
                tess3(64, 48, 48, 10),
            ),
            (
                "3d7p+tess(tl2)",
                Shape::d3(192, 192, 192),
                10,
                49,
                Method::TransLayout2,
                tess3(64, 48, 48, 10),
            ),
        ]
    };

    let all: Vec<Workload> = workloads
        .iter()
        .map(|&(n, s, t, sd)| (n, s, t, sd, Method::TransLayout, None))
        .chain(
            tiled
                .iter()
                .map(|&(n, s, t, sd, m, tl)| (n, s, t, sd, m, Some(tl))),
        )
        .collect();

    for (name, shape, t, seed, method, tiling) in all {
        let base = name.split('+').next().unwrap_or(name);
        let spec: StencilSpec = base.parse().expect("paper stencil name");
        let waxis: &[usize] = if name.contains("@periodic") || name.contains("@reflect") {
            &[2, 7]
        } else {
            &axis
        };
        let init = any_grid_dtype(shape, spec.radius(), seed, spec.dtype());
        let mut oracle = init.clone();
        Plan::new(shape)
            .method(Method::Scalar)
            .isa(isa)
            .parallelism(Parallelism::Off)
            .stencil(&spec)
            .unwrap()
            .run(&mut oracle, t);
        let [nx, ny, nz] = shape.dims();
        let cells_n = nx * ny.max(1) * nz.max(1);
        let mut cells = Vec::new();
        for (i, &k) in [0usize].iter().chain(waxis).enumerate() {
            let par = if i == 0 {
                Parallelism::Off
            } else {
                Parallelism::Threads(k)
            };
            let mut plan = Plan::new(shape).method(method).isa(isa);
            if let Some(tl) = tiling {
                plan = plan.tiling(tl);
            }
            let mut plan = plan.parallelism(par).stencil(&spec).unwrap();
            let mut g = init.clone();
            let secs = best_of(reps, || {
                let mut g = init.clone();
                plan.run(&mut g, t);
                std::hint::black_box(&g);
            });
            plan.reset_phase_totals();
            plan.run(&mut g, t);
            if max_abs_diff_any(&g, &oracle) != 0.0 {
                eprintln!("BIT MISMATCH: {name} {par:?}");
                bit_failures += 1;
            }
            if phases {
                // Totals from the verification run just above: CPU time
                // summed across workers, so shares are meaningful even
                // when the wall time is divided over a pool.
                let p = plan.phase_totals();
                let tot = p.stage_in_ns + p.compute_ns + p.stage_out_ns + p.halo_ns;
                if tot > 0 {
                    let pct = |ns: u64| ns as f64 / tot as f64 * 100.0;
                    println!(
                        "  phases {name} {par:?}: stage-in {:.1}% compute {:.1}% \
                         stage-out {:.1}% halo {:.1}% ({:.2} ms cpu)",
                        pct(p.stage_in_ns),
                        pct(p.compute_ns),
                        pct(p.stage_out_ns),
                        pct(p.halo_ns),
                        tot as f64 / 1e6,
                    );
                }
            }
            cells.push(Cell {
                workload: name.replace("@f32", ""),
                dtype: (spec.dtype() == stencil_simd::Dtype::F32).then_some("f32"),
                threads: if i == 0 { 0 } else { k },
                saturated: i > 0 && k > host,
                secs,
                gf: gflops(cells_n, t, spec.flops_per_point(), secs),
            });
        }
        report(&cells, &mut rows);
    }

    println!(
        "\n(all results verified bit-identical to the scalar oracle: {})",
        if bit_failures == 0 { "yes" } else { "NO" }
    );
    stencil_bench::save::maybe_save("scaling", &rows);
    if bit_failures > 0 {
        std::process::exit(1);
    }
}
