//! Scaling microbenchmark for the parallel domain-decomposition executor:
//! untiled plans at `Parallelism::Off` vs `Parallelism::Threads(k)` across
//! a thread axis, for a 1D, a 2D-star and a 3D-star workload.
//!
//! Every parallel result is verified **bit-identical** to the scalar
//! oracle before its time is reported — a speedup that changes bits is a
//! bug, not a result (the process exits non-zero on any mismatch).
//!
//! ```sh
//! cargo run --release --bin scaling [-- --smoke] [--threads=4] [--save-json]
//! ```
//!
//! `--threads=N` restricts the axis to `{1, N}`; the default axis is
//! 1, 2, 4, ... up to every available core.

use stencil_bench::save::{Row, Value};
use stencil_bench::{best_of, gflops, grid1, grid2, grid3, Scale};
use stencil_core::exec::{Parallelism, Plan, Shape};
use stencil_core::verify::{max_abs_diff1, max_abs_diff2, max_abs_diff3};
use stencil_core::{Method, S1d3p, S2d5p, S3d7p, Star1, Star2, Star3};
use stencil_simd::Isa;

/// Thread counts to sweep: powers of two up to the host core count (the
/// host count itself always included), or `{1, N}` under `--threads=N`.
fn thread_axis() -> Vec<usize> {
    if let Some(n) = stencil_bench::threads_arg() {
        let mut v = vec![1];
        if n > 1 {
            v.push(n);
        }
        return v;
    }
    let m = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut v: Vec<usize> = (0..).map(|p| 1usize << p).take_while(|&t| t <= m).collect();
    if v.last() != Some(&m) {
        v.push(m);
    }
    v
}

struct Cell {
    workload: &'static str,
    threads: usize, // 0 encodes Parallelism::Off
    secs: f64,
    gf: f64,
}

fn report(cells: &[Cell], rows: &mut Vec<Row>) {
    let off = cells
        .iter()
        .find(|c| c.threads == 0)
        .expect("Off baseline measured first");
    for c in cells {
        let label = if c.threads == 0 {
            "off".to_string()
        } else {
            c.threads.to_string()
        };
        let speedup = off.secs / c.secs;
        println!(
            "{:<10} {:>7} {:>11.2} ms {:>9.2} GF/s {:>8.2}x",
            c.workload,
            label,
            c.secs * 1e3,
            c.gf,
            speedup,
        );
        rows.push(vec![
            ("workload", Value::from(c.workload)),
            ("threads", Value::Str(label)),
            ("seconds", Value::from(c.secs)),
            ("gflops", Value::from(c.gf)),
            ("speedup_vs_off", Value::from(speedup)),
        ]);
    }
}

fn main() {
    stencil_bench::banner("scaling: untiled domain decomposition, Off vs Threads(k)");
    let isa = Isa::detect_best();
    let smoke = stencil_bench::scale() == Scale::Smoke;
    let axis = thread_axis();
    let reps = if smoke { 2 } else { 3 };
    let mut rows: Vec<Row> = Vec::new();
    let mut bit_failures = 0usize;
    println!(
        "\n{:<10} {:>7} {:>14} {:>14} {:>9}",
        "workload", "threads", "time", "rate", "vs off"
    );

    // 1D star (1D3P heat), TransLayout: identical per-step kernel under
    // Off and Threads(k) — pure decomposition scaling.
    {
        let (n, t) = if smoke {
            (500_000, 12)
        } else {
            (4_000_000, 40)
        };
        let s = S1d3p::heat();
        let init = grid1(n, 41);
        let mut oracle = init.clone();
        Plan::new(Shape::d1(n))
            .method(Method::Scalar)
            .isa(isa)
            .parallelism(Parallelism::Off)
            .star1(s)
            .unwrap()
            .run(&mut oracle, t);
        let mut cells = Vec::new();
        for (i, &k) in [0usize].iter().chain(&axis).enumerate() {
            let par = if i == 0 {
                Parallelism::Off
            } else {
                Parallelism::Threads(k)
            };
            let mut plan = Plan::new(Shape::d1(n))
                .method(Method::TransLayout)
                .isa(isa)
                .parallelism(par)
                .star1(s)
                .unwrap();
            let mut g = init.clone();
            let secs = best_of(reps, || {
                let mut g = init.clone();
                plan.run(&mut g, t);
                std::hint::black_box(&g);
            });
            plan.run(&mut g, t);
            if max_abs_diff1(&g, &oracle) != 0.0 {
                eprintln!("BIT MISMATCH: 1d3p {par:?}");
                bit_failures += 1;
            }
            cells.push(Cell {
                workload: "1d3p",
                threads: if i == 0 { 0 } else { k },
                secs,
                gf: gflops(n, t, S1d3p::flops_per_point(), secs),
            });
        }
        report(&cells, &mut rows);
    }

    // 2D star (2D5P heat), TransLayout — the acceptance workload: a ≥4-core
    // host should show ≥2.5x at 4 threads over Off.
    {
        let (nx, ny, t) = if smoke {
            (512, 256, 10)
        } else {
            (2_000, 1_000, 40)
        };
        let s = S2d5p::heat();
        let init = grid2(nx, ny, 42);
        let mut oracle = init.clone();
        Plan::new(Shape::d2(nx, ny))
            .method(Method::Scalar)
            .isa(isa)
            .parallelism(Parallelism::Off)
            .star2(s)
            .unwrap()
            .run(&mut oracle, t);
        let mut cells = Vec::new();
        for (i, &k) in [0usize].iter().chain(&axis).enumerate() {
            let par = if i == 0 {
                Parallelism::Off
            } else {
                Parallelism::Threads(k)
            };
            let mut plan = Plan::new(Shape::d2(nx, ny))
                .method(Method::TransLayout)
                .isa(isa)
                .parallelism(par)
                .star2(s)
                .unwrap();
            let mut g = init.clone();
            let secs = best_of(reps, || {
                let mut g = init.clone();
                plan.run(&mut g, t);
                std::hint::black_box(&g);
            });
            plan.run(&mut g, t);
            if max_abs_diff2(&g, &oracle) != 0.0 {
                eprintln!("BIT MISMATCH: 2d5p {par:?}");
                bit_failures += 1;
            }
            cells.push(Cell {
                workload: "2d5p",
                threads: if i == 0 { 0 } else { k },
                secs,
                gf: gflops(nx * ny, t, S2d5p::flops_per_point(), secs),
            });
        }
        report(&cells, &mut rows);
    }

    // 3D star (3D7P heat), TransLayout, banded over z.
    {
        let (nx, ny, nz, t) = if smoke {
            (64, 64, 64, 6)
        } else {
            (192, 192, 192, 10)
        };
        let s = S3d7p::heat();
        let init = grid3(nx, ny, nz, 43);
        let mut oracle = init.clone();
        Plan::new(Shape::d3(nx, ny, nz))
            .method(Method::Scalar)
            .isa(isa)
            .parallelism(Parallelism::Off)
            .star3(s)
            .unwrap()
            .run(&mut oracle, t);
        let mut cells = Vec::new();
        for (i, &k) in [0usize].iter().chain(&axis).enumerate() {
            let par = if i == 0 {
                Parallelism::Off
            } else {
                Parallelism::Threads(k)
            };
            let mut plan = Plan::new(Shape::d3(nx, ny, nz))
                .method(Method::TransLayout)
                .isa(isa)
                .parallelism(par)
                .star3(s)
                .unwrap();
            let mut g = init.clone();
            let secs = best_of(reps, || {
                let mut g = init.clone();
                plan.run(&mut g, t);
                std::hint::black_box(&g);
            });
            plan.run(&mut g, t);
            if max_abs_diff3(&g, &oracle) != 0.0 {
                eprintln!("BIT MISMATCH: 3d7p {par:?}");
                bit_failures += 1;
            }
            cells.push(Cell {
                workload: "3d7p",
                threads: if i == 0 { 0 } else { k },
                secs,
                gf: gflops(nx * ny * nz, t, S3d7p::flops_per_point(), secs),
            });
        }
        report(&cells, &mut rows);
    }

    println!(
        "\n(all results verified bit-identical to the scalar oracle: {})",
        if bit_failures == 0 { "yes" } else { "NO" }
    );
    stencil_bench::save::maybe_save("scaling", &rows);
    if bit_failures > 0 {
        std::process::exit(1);
    }
}
