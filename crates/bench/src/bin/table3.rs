//! Table 3: speedup over SDSL per storage level × blocking level,
//! multicore cache-blocking (derived from the Fig. 8 sweep).

use stencil_bench::fig8::{sweep, table3};
use stencil_bench::Cli;
use stencil_simd::Isa;

fn main() {
    stencil_bench::banner("Table 3: speedup over SDSL, multicore cache-blocking (1D3P)");
    let scale = Cli::parse().scale();
    let base = if scale == stencil_bench::Scale::Smoke {
        64
    } else {
        400
    };
    let rows = sweep(Isa::detect_best(), base, scale);
    println!(
        "{:<8} {:<6} {:>14} {:>8} {:>8}",
        "Level", "Block", "Tessellation", "Our", "Our2"
    );
    let mut acc: Vec<(String, Vec<f64>)> = vec![("L1".into(), vec![]), ("L2".into(), vec![])];
    let view = table3(&rows);
    for (level, blocking, cols) in &view {
        print!("{:<8} {:<6}", level, blocking);
        for m in ["Tessellation", "Our", "Our2"] {
            let v = cols
                .iter()
                .find(|(mm, _)| mm == m)
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN);
            print!(" {:>7.2}x", v);
            if m == "Our2" {
                let slot = if blocking == "L1" { 0 } else { 1 };
                acc[slot].1.push(v);
            }
        }
        println!();
    }
    for (b, vals) in acc {
        if !vals.is_empty() {
            let gm = vals.iter().product::<f64>().powf(1.0 / vals.len() as f64);
            println!("Mean Our2 speedup with {b} blocking: {gm:.2}x (paper: 3.29x L1 / 3.48x L2)");
        }
    }

    let json: Vec<stencil_bench::save::Row> = view
        .into_iter()
        .flat_map(|(level, blocking, cols)| {
            cols.into_iter().map(move |(method, speedup)| {
                vec![
                    ("level", stencil_bench::save::Value::Str(level.clone())),
                    (
                        "blocking",
                        stencil_bench::save::Value::Str(blocking.clone()),
                    ),
                    ("method", stencil_bench::save::Value::Str(method)),
                    ("speedup_vs_sdsl", stencil_bench::save::Value::Num(speedup)),
                ]
            })
        })
        .collect();
    stencil_bench::save::maybe_save("table3", &json);
}
