//! CI perf-regression gate: diff fresh `BENCH_*.json` snapshots against
//! the committed `BENCH_baseline/` and fail on a geomean regression past
//! the threshold. See `stencil_bench::gate` for the matching rules.
//!
//! ```sh
//! bench_gate [NAME...] [--baseline=DIR] [--current=DIR] \
//!            [--threshold=PCT] [--rebaseline] [--strict]
//! ```
//!
//! Defaults: names `plan_reuse scaling`, baseline `<root>/BENCH_baseline`,
//! current `<root>` (where bare `--save-json` writes), threshold 15%.
//! When the baseline's host fingerprint (ISA × cores) differs from the
//! current host's, the diff is advisory and exits 0 unless `--strict`.
//! Rows absent from the baseline (a freshly added bench family) are
//! reported as informational and never gate — run `--rebaseline` to arm
//! them.
//!
//! Besides the baseline diff, the gate runs a **boundary-parity check**
//! within the current snapshots: every non-Dirichlet session row (one
//! carrying a `boundary` field) is paired with the Dirichlet row sharing
//! its remaining identity, and the run fails when any pair's wall-time
//! ratio exceeds 1.10× — the fused halo fast path's contract. Same
//! advisory rule across host classes.
//!
//! A **tess-parity check** pairs every `…+tess(tl2)` scaling row with
//! the `…+tess` MultiLoad row sharing its tile geometry and remaining
//! identity: the tile-resident staging path owes the natural-layout
//! schedule a wall-time ratio within 2.5× (the pre-staging gap was
//! ~18×). Same advisory rule across host classes.
//!
//! A **dtype-speedup check** runs the same way: every f32 row (one
//! carrying a `dtype` field) is paired with the f64 row sharing its
//! remaining identity, and when the current host has a SIMD ISA the
//! geomean f64/f32 speedup must reach 1.3× — twice the lane width owes
//! a real win, not just parity. On a portable-only host (no SIMD to
//! widen) the check is informational, and across host classes it is
//! advisory like everything else (`--strict` enforces).

use std::path::PathBuf;

use stencil_bench::gate;
use stencil_bench::save::workspace_root;
use stencil_bench::Cli;

fn main() {
    let cli = Cli::parse();
    let baseline: PathBuf = cli
        .value("--baseline")
        .map(Into::into)
        .unwrap_or_else(|| workspace_root().join("BENCH_baseline"));
    let current: PathBuf = cli
        .value("--current")
        .map(Into::into)
        .unwrap_or_else(workspace_root);
    let threshold: f64 = cli
        .value("--threshold")
        .map(|v| v.parse().expect("--threshold=PCT takes a number"))
        .unwrap_or(15.0);
    let do_rebaseline = cli.flag("--rebaseline");
    let strict = cli.flag("--strict");
    if let Some(unknown) = cli.unknown_flags(&[
        "--baseline",
        "--current",
        "--threshold",
        "--rebaseline",
        "--strict",
    ]) {
        eprintln!("unknown flag {unknown}");
        std::process::exit(2);
    }
    // `--threshold 20` (space-separated) would otherwise silently fall
    // back to the default and treat `20` as a bench name.
    if let Some(needs_value) = cli.bare_value_flag(&["--baseline", "--current", "--threshold"]) {
        eprintln!("{needs_value} requires a value: {needs_value}=...");
        std::process::exit(2);
    }
    let mut names: Vec<String> = cli.positional().map(str::to_string).collect();
    if names.is_empty() {
        names = vec!["plan_reuse".into(), "scaling".into()];
    }
    let names: Vec<&str> = names.iter().map(String::as_str).collect();

    if do_rebaseline {
        match gate::rebaseline(&names, &baseline, &current) {
            Ok(paths) => {
                for p in paths {
                    println!("rebaselined {}", p.display());
                }
                return;
            }
            Err(e) => {
                eprintln!("rebaseline failed: {e}");
                std::process::exit(2);
            }
        }
    }

    println!(
        "# bench_gate: {} vs {} (fail above {threshold:.0}% geomean regression)",
        current.display(),
        baseline.display()
    );
    let mut all_ratios = Vec::new();
    let mut errors = 0usize;
    let mut new_total = 0usize;
    let mut missing_total = 0usize;
    let mut mismatch: Option<String> = None;
    for name in &names {
        match gate::diff_file(name, &baseline, &current) {
            Ok(diff) => {
                println!(
                    "  {name:<12} {:>4} rows matched, {:>2} new (informational), \
                     {:>2} missing, geomean {:+.1}%",
                    diff.ratios.len(),
                    diff.new_rows,
                    diff.missing_rows,
                    (diff.geomean() - 1.0) * 100.0
                );
                if let Some(m) = diff.host_mismatch {
                    mismatch.get_or_insert(m);
                }
                new_total += diff.new_rows;
                missing_total += diff.missing_rows;
                all_ratios.extend(diff.ratios);
            }
            Err(e) => {
                eprintln!("  {name}: {e}");
                errors += 1;
            }
        }
    }
    if errors > 0 {
        eprintln!("bench_gate: {errors} snapshot(s) missing or unreadable");
        std::process::exit(2);
    }

    // Boundary parity: within the *current* snapshots (one host, one
    // build), every non-Dirichlet row must stay within the allowance of
    // its Dirichlet sibling. Independent of the baseline, so it gates
    // even while new rows are still unarmed.
    const PARITY_PCT: f64 = 10.0;
    let mut parity_pairs = 0usize;
    let mut parity_over: Vec<String> = Vec::new();
    for name in &names {
        if let Ok(pairs) = gate::boundary_parity(name, &current) {
            for p in pairs {
                parity_pairs += 1;
                if p.ratio > 1.0 + PARITY_PCT / 100.0 {
                    parity_over.push(format!(
                        "{name}: boundary={} {:.2}x vs [{}]",
                        p.boundary, p.ratio, p.key
                    ));
                }
            }
        }
    }
    if parity_pairs > 0 {
        println!(
            "boundary parity: {parity_pairs} pair(s) checked, {} over the {PARITY_PCT:.0}% \
             allowance",
            parity_over.len()
        );
        for line in &parity_over {
            println!("    {line}");
        }
    }
    let parity_failed = |advisory: bool| {
        if parity_over.is_empty() || advisory {
            return false;
        }
        eprintln!(
            "bench_gate: FAIL — {} boundary row(s) exceed the {PARITY_PCT:.0}% Dirichlet \
             parity allowance",
            parity_over.len()
        );
        true
    };

    // Tess parity: within the current snapshots, every staged
    // transpose-layout tessellation row must stay within the allowance
    // of the MultiLoad row running the identical tile geometry.
    const TESS_PARITY: f64 = 2.5;
    let mut tess_pairs = 0usize;
    let mut tess_over: Vec<String> = Vec::new();
    for name in &names {
        if let Ok(pairs) = gate::tess_parity(name, &current) {
            for p in pairs {
                tess_pairs += 1;
                if p.ratio > TESS_PARITY {
                    tess_over.push(format!("{name}: {:.2}x vs [{}]", p.ratio, p.key));
                }
            }
        }
    }
    if tess_pairs > 0 {
        println!(
            "tess parity: {tess_pairs} tl2/MultiLoad pair(s) checked, {} over the \
             {TESS_PARITY}x allowance",
            tess_over.len()
        );
        for line in &tess_over {
            println!("    {line}");
        }
    }
    let tess_failed = |advisory: bool| {
        if tess_over.is_empty() || advisory {
            return false;
        }
        eprintln!(
            "bench_gate: FAIL — {} tessellated tl2 row(s) exceed the {TESS_PARITY}x \
             MultiLoad parity allowance",
            tess_over.len()
        );
        true
    };

    // Dtype speedup: within the current snapshots, f32 rows owe a
    // geomean ≥ DTYPE_SPEEDUP× over their f64 siblings when the host
    // has a SIMD ISA (portable-only hosts get an informational line —
    // scalar f32 owes nothing). Like boundary parity, independent of
    // the baseline.
    const DTYPE_SPEEDUP: f64 = 1.3;
    let mut dtype_speedups: Vec<f64> = Vec::new();
    let mut dtype_isa = String::new();
    for name in &names {
        if let Ok((pairs, isa)) = gate::dtype_speedups(name, &current) {
            dtype_isa = isa;
            dtype_speedups.extend(pairs.iter().map(|p| p.speedup));
        }
    }
    let dtype_gm = gate::geomean(&dtype_speedups);
    let simd_host = !dtype_isa.is_empty() && dtype_isa != "portable";
    if !dtype_speedups.is_empty() {
        println!(
            "dtype speedup: {} f32/f64 pair(s), geomean {dtype_gm:.2}x (bar {DTYPE_SPEEDUP}x, \
             {})",
            dtype_speedups.len(),
            if simd_host {
                "gated"
            } else {
                "informational on a portable-only host"
            }
        );
    }
    let dtype_failed = |advisory: bool| {
        if dtype_speedups.is_empty() || !simd_host || dtype_gm >= DTYPE_SPEEDUP || advisory {
            return false;
        }
        eprintln!(
            "bench_gate: FAIL — f32 geomean speedup {dtype_gm:.2}x is under the \
             {DTYPE_SPEEDUP}x bar on a SIMD host ({dtype_isa})"
        );
        true
    };

    let advisory = mismatch.is_some() && !strict;
    if all_ratios.is_empty() {
        // New rows with nothing gated yet is the normal state right
        // after a bench family lands: informational, not a failure —
        // but only when no baseline rows went *missing*. A wholesale
        // row-identity change makes every baseline row missing and
        // every current row new, and silently passing that would turn
        // the gate off; keep it a hard failure.
        if new_total > 0 && missing_total == 0 {
            if parity_failed(advisory) || dtype_failed(advisory) || tess_failed(advisory) {
                std::process::exit(1);
            }
            println!(
                "bench_gate: OK — no gated rows yet; {new_total} new informational row(s). \
                 Run `scripts/bench_gate --rebaseline` to arm them."
            );
            return;
        }
        eprintln!(
            "bench_gate: no rows matched ({missing_total} baseline row(s) missing from the \
             current run) — row identities changed? Re-arm with --rebaseline."
        );
        std::process::exit(2);
    }
    let gm = gate::geomean(&all_ratios);
    let pct = (gm - 1.0) * 100.0;
    println!(
        "overall: {} rows, geomean {pct:+.1}% vs baseline",
        all_ratios.len()
    );
    if let Some(m) = mismatch {
        if !strict {
            println!(
                "bench_gate: ADVISORY — {m}; absolute wall times don't gate across host \
                 classes. Run `scripts/bench_gate --rebaseline` on this runner class to arm \
                 the gate (or pass --strict to enforce anyway)."
            );
            return;
        }
        println!("note: {m} (comparing anyway: --strict)");
    }
    if gm > 1.0 + threshold / 100.0 {
        eprintln!("bench_gate: FAIL — geomean regression {pct:+.1}% exceeds {threshold:.0}%");
        std::process::exit(1);
    }
    if parity_failed(advisory) || dtype_failed(advisory) || tess_failed(advisory) {
        std::process::exit(1);
    }
    if new_total > 0 {
        println!(
            "bench_gate: OK ({new_total} new informational row(s) not gated — \
             run --rebaseline to arm them)"
        );
        return;
    }
    println!("bench_gate: OK");
}
