//! Shared infrastructure for the benchmark harness: timing, GFLOP/s
//! accounting, workload construction, storage-level classification, and
//! the sweep drivers behind each table/figure binary.
//!
//! Scaling note: the paper's runs use up to 10⁷ cells × 10⁴ steps on a
//! 36-core Xeon 6140; we keep the *same sweep structure* (cache levels,
//! method sets, thread counts, AVX2-vs-AVX-512) with step counts sized
//! for minutes, not hours. Set `STENCIL_BENCH_FULL=1` for longer runs.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stencil_core::exec::Shape;
use stencil_core::{AnyGrid, Grid1, Grid2, Grid3, Method, S1d3p, StencilSpec};
use stencil_simd::Isa;

pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod gate;
pub mod save;

/// Workload scale the sweep drivers size themselves for.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: every driver finishes in seconds (`--smoke` or
    /// `STENCIL_BENCH_SMOKE=1`). Exists so the figure/table binaries run
    /// on every commit and cannot silently rot.
    Smoke,
    /// Default: minutes, preserving the paper's sweep structure.
    Quick,
    /// Paper-closer sizes (`STENCIL_BENCH_FULL=1`).
    Full,
}

/// The parsed command line every bench binary shares — one
/// implementation of the `--flag` / `--key=value` / positional grammar
/// instead of a hand-rolled `env::args()` loop per binary.
///
/// Flags every binary understands: `--smoke` (CI-sized runs),
/// `--threads=N` (worker override), `--save-json[=DIR]` (handled by
/// [`save::maybe_save`]). Positional arguments name paper stencils where
/// a binary sweeps them (see [`Cli::stencils`]); binary-specific flags
/// go through [`Cli::flag`] / [`Cli::value`].
#[derive(Clone, Debug)]
pub struct Cli {
    args: Vec<String>,
}

impl Cli {
    /// Parse the process arguments.
    pub fn parse() -> Cli {
        Cli {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// A `Cli` over explicit arguments (tests).
    pub fn from_args<S: Into<String>>(args: impl IntoIterator<Item = S>) -> Cli {
        Cli {
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// Is the bare flag present (e.g. `flag("--smoke")`)?
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The value of a `--key=value` argument (e.g. `value("--threads")`).
    pub fn value(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .find_map(|a| a.strip_prefix(name)?.strip_prefix('='))
    }

    /// Positional (non-`--`) arguments in order.
    pub fn positional(&self) -> impl Iterator<Item = &str> {
        self.args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
    }

    /// The workload scale: `--smoke` / `STENCIL_BENCH_SMOKE=1` wins,
    /// then `STENCIL_BENCH_FULL=1`, else quick.
    pub fn scale(&self) -> Scale {
        if self.flag("--smoke") || env_is_1("STENCIL_BENCH_SMOKE") {
            Scale::Smoke
        } else if full_mode() {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Worker-thread override from `--threads=N`, if any. Exits with
    /// status 2 on a bare `--threads` (the value must be `=`-attached,
    /// or it would be silently ignored as a stray positional) and on a
    /// value that is not a number (a typo must not silently run the
    /// default sweep).
    pub fn threads(&self) -> Option<usize> {
        if self.bare_value_flag(&["--threads"]).is_some() {
            eprintln!("--threads requires a value: --threads=N");
            std::process::exit(2);
        }
        self.value("--threads").map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--threads takes a number, got --threads={v}");
                std::process::exit(2);
            })
        })
    }

    /// The first `--flag` whose name (the part before any `=`) is not
    /// in `known` — for binaries that want to reject typos instead of
    /// ignoring them.
    pub fn unknown_flags(&self, known: &[&str]) -> Option<&str> {
        self.args
            .iter()
            .filter(|a| a.starts_with("--"))
            .map(|a| a.split_once('=').map(|(k, _)| k).unwrap_or(a.as_str()))
            .find(|k| !known.contains(k))
    }

    /// The stencils selected by the positional arguments, parsed
    /// through [`StencilSpec`]'s `FromStr` (so `fig9 2d5p 3d27p`
    /// restricts a sweep); all six paper stencils when none are named.
    /// Duplicated names are collapsed — repeating a name must not
    /// repeat the sweep. Errors on an unknown name — a typo should not
    /// silently run the full sweep.
    pub fn try_stencils(&self) -> Result<Vec<StencilSpec>, stencil_core::SpecError> {
        let mut named: Vec<&str> = self.positional().collect();
        let mut seen = std::collections::HashSet::new();
        named.retain(|n| seen.insert(*n));
        let names: Vec<&str> = if named.is_empty() {
            StencilSpec::NAMES.to_vec()
        } else {
            named
        };
        names.into_iter().map(str::parse).collect()
    }

    /// [`Cli::try_stencils`] for binaries: exits with status 2 on an
    /// unknown name, and on an `@boundary` suffix — the figure/table
    /// drivers pin the paper's Dirichlet setting, and their workload
    /// tables are keyed by the bare paper names.
    pub fn stencils(&self) -> Vec<StencilSpec> {
        let specs = self.try_stencils().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        for s in &specs {
            if s.boundary() != stencil_core::Boundary::default() {
                eprintln!(
                    "stencil '{s}' requests a non-default boundary; the figure/table \
                     drivers reproduce the paper's constant-halo setting — drop the \
                     '@{}' suffix (boundaries run through Plan::stencil, and the \
                     scaling bench's boundary workloads)",
                    s.boundary()
                );
                std::process::exit(2);
            }
        }
        specs
    }

    /// The first of `names` that appears as a bare flag (no `=value`),
    /// for flags that require a value: `--threads 4` would otherwise
    /// silently parse as no override plus a stray positional `4`.
    pub fn bare_value_flag<'a>(&self, names: &[&'a str]) -> Option<&'a str> {
        names.iter().copied().find(|n| self.flag(n))
    }
}

fn env_is_1(key: &str) -> bool {
    std::env::var(key).map(|v| v == "1").unwrap_or(false)
}

/// True when the harness should run the longer (paper-closer) variants.
pub fn full_mode() -> bool {
    env_is_1("STENCIL_BENCH_FULL")
}

/// The scale selected on the command line / environment (smoke wins).
pub fn scale() -> Scale {
    Cli::parse().scale()
}

/// Worker-thread override from `--threads=N`, if any.
pub fn threads_arg() -> Option<usize> {
    Cli::parse().threads()
}

/// Number of worker threads to use for multicore experiments
/// (`--threads=N` override, else every available core).
pub fn max_threads() -> usize {
    threads_arg().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Wall-time the closure, best of `reps` runs.
pub fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// GFLOP/s for `points · steps` stencil updates of `flops` each.
pub fn gflops(points: usize, steps: usize, flops: usize, secs: f64) -> f64 {
    (points as f64) * (steps as f64) * (flops as f64) / secs / 1e9
}

/// Cache-level label for a working set of `bytes` (two grids), using this
/// host's typical hierarchy (32 KiB L1d / 1 MiB L2 / shared L3).
pub fn storage_level(bytes: usize) -> &'static str {
    if bytes <= 28 * 1024 {
        "L1"
    } else if bytes <= 768 * 1024 {
        "L2"
    } else if bytes <= 16 * 1024 * 1024 {
        "L3"
    } else {
        "Mem"
    }
}

/// Deterministic random 1D grid.
pub fn grid1(n: usize, seed: u64) -> Grid1 {
    let mut r = StdRng::seed_from_u64(seed);
    Grid1::from_fn(n, 0.0, |_| r.random_range(0.0..1.0))
}

/// Deterministic random 2D grid (halo width 1).
pub fn grid2(nx: usize, ny: usize, seed: u64) -> Grid2 {
    let mut r = StdRng::seed_from_u64(seed);
    Grid2::from_fn(nx, ny, 1, 0.0, |_, _| r.random_range(0.0..1.0))
}

/// Deterministic random 3D grid (halo width 1).
pub fn grid3(nx: usize, ny: usize, nz: usize, seed: u64) -> Grid3 {
    let mut r = StdRng::seed_from_u64(seed);
    Grid3::from_fn(nx, ny, nz, 1, 0.0, |_, _, _| r.random_range(0.0..1.0))
}

/// Deterministic random grid of any shape (erased API). `halo_r` is the
/// 2D/3D halo width — pass the stencil radius. Fill order matches the
/// typed helpers above, so for the same shape/seed the grids are
/// identical cell-for-cell.
pub fn any_grid(shape: Shape, halo_r: usize, seed: u64) -> AnyGrid {
    let mut r = StdRng::seed_from_u64(seed);
    AnyGrid::from_fn(shape, halo_r, 0.0, |_, _, _| r.random_range(0.0..1.0))
}

/// Dtype-aware twin of [`any_grid`]: the same draw sequence, rounded to
/// the element type the spec asks for — an `@f32` workload gets a native
/// f32 grid whose cells are the f32 roundings of its f64 sibling's.
pub fn any_grid_dtype(
    shape: Shape,
    halo_r: usize,
    seed: u64,
    dtype: stencil_simd::Dtype,
) -> AnyGrid {
    let mut r = StdRng::seed_from_u64(seed);
    match dtype {
        stencil_simd::Dtype::F64 => {
            AnyGrid::from_fn(shape, halo_r, 0.0, |_, _, _| r.random_range(0.0..1.0))
        }
        stencil_simd::Dtype::F32 => AnyGrid::from_fn_f32(shape, halo_r, 0.0, |_, _, _| {
            r.random_range(0.0..1.0) as f32
        }),
    }
}

/// Deterministic random 1D f32 grid (the f32 sibling of [`grid1`]).
pub fn grid1_f32(n: usize, seed: u64) -> Grid1<f32> {
    let mut r = StdRng::seed_from_u64(seed);
    Grid1::from_fn(n, 0.0, |_| r.random_range(0.0..1.0) as f32)
}

/// The paper's method labels for the sequential experiments (Fig. 7 /
/// Table 2).
pub const SEQ_METHODS: [(Method, &str); 5] = [
    (Method::MultiLoad, "MultiLoad"),
    (Method::Reorg, "Reorg"),
    (Method::Dlt, "DLT"),
    (Method::TransLayout, "Our"),
    (Method::TransLayout2, "Our2"),
];

/// Default stencil for the 1D experiments (the paper's 1D-Heat / 1D3P).
pub fn heat1d() -> S1d3p {
    S1d3p::heat()
}

/// Print the host/ISA banner every binary emits first.
pub fn banner(what: &str) {
    println!("# {what}");
    println!(
        "# host: {} threads, best ISA: {}",
        max_threads(),
        Isa::detect_best()
    );
    println!(
        "# available ISAs: {}",
        Isa::ALL
            .into_iter()
            .filter(|i| i.is_available())
            .map(|i| i.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "# mode: {}",
        match scale() {
            Scale::Smoke => "SMOKE (CI-sized)",
            Scale::Full => "FULL",
            Scale::Quick => "quick (STENCIL_BENCH_FULL=1 for longer runs, --smoke for CI)",
        }
    );
}
