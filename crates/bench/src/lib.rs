//! Shared infrastructure for the benchmark harness: timing, GFLOP/s
//! accounting, workload construction, storage-level classification, and
//! the sweep drivers behind each table/figure binary.
//!
//! Scaling note: the paper's runs use up to 10⁷ cells × 10⁴ steps on a
//! 36-core Xeon 6140; we keep the *same sweep structure* (cache levels,
//! method sets, thread counts, AVX2-vs-AVX-512) with step counts sized
//! for minutes, not hours. Set `STENCIL_BENCH_FULL=1` for longer runs.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stencil_core::{Grid1, Grid2, Grid3, Method, S1d3p};
use stencil_simd::Isa;

pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod gate;
pub mod save;

/// Workload scale the sweep drivers size themselves for.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: every driver finishes in seconds (`--smoke` or
    /// `STENCIL_BENCH_SMOKE=1`). Exists so the figure/table binaries run
    /// on every commit and cannot silently rot.
    Smoke,
    /// Default: minutes, preserving the paper's sweep structure.
    Quick,
    /// Paper-closer sizes (`STENCIL_BENCH_FULL=1`).
    Full,
}

/// True when the harness should run the longer (paper-closer) variants.
pub fn full_mode() -> bool {
    std::env::var("STENCIL_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// True when the harness should run the CI-sized smoke variants.
pub fn smoke_mode() -> bool {
    std::env::args().skip(1).any(|a| a == "--smoke")
        || std::env::var("STENCIL_BENCH_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// The scale selected on the command line / environment (smoke wins).
pub fn scale() -> Scale {
    if smoke_mode() {
        Scale::Smoke
    } else if full_mode() {
        Scale::Full
    } else {
        Scale::Quick
    }
}

/// Worker-thread override from `--threads=N`, if any.
pub fn threads_arg() -> Option<usize> {
    std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("--threads=")?.parse().ok())
}

/// Number of worker threads to use for multicore experiments
/// (`--threads=N` override, else every available core).
pub fn max_threads() -> usize {
    threads_arg().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Wall-time the closure, best of `reps` runs.
pub fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// GFLOP/s for `points · steps` stencil updates of `flops` each.
pub fn gflops(points: usize, steps: usize, flops: usize, secs: f64) -> f64 {
    (points as f64) * (steps as f64) * (flops as f64) / secs / 1e9
}

/// Cache-level label for a working set of `bytes` (two grids), using this
/// host's typical hierarchy (32 KiB L1d / 1 MiB L2 / shared L3).
pub fn storage_level(bytes: usize) -> &'static str {
    if bytes <= 28 * 1024 {
        "L1"
    } else if bytes <= 768 * 1024 {
        "L2"
    } else if bytes <= 16 * 1024 * 1024 {
        "L3"
    } else {
        "Mem"
    }
}

/// Deterministic random 1D grid.
pub fn grid1(n: usize, seed: u64) -> Grid1 {
    let mut r = StdRng::seed_from_u64(seed);
    Grid1::from_fn(n, 0.0, |_| r.random_range(0.0..1.0))
}

/// Deterministic random 2D grid (halo width 1).
pub fn grid2(nx: usize, ny: usize, seed: u64) -> Grid2 {
    let mut r = StdRng::seed_from_u64(seed);
    Grid2::from_fn(nx, ny, 1, 0.0, |_, _| r.random_range(0.0..1.0))
}

/// Deterministic random 3D grid (halo width 1).
pub fn grid3(nx: usize, ny: usize, nz: usize, seed: u64) -> Grid3 {
    let mut r = StdRng::seed_from_u64(seed);
    Grid3::from_fn(nx, ny, nz, 1, 0.0, |_, _, _| r.random_range(0.0..1.0))
}

/// The paper's method labels for the sequential experiments (Fig. 7 /
/// Table 2).
pub const SEQ_METHODS: [(Method, &str); 5] = [
    (Method::MultiLoad, "MultiLoad"),
    (Method::Reorg, "Reorg"),
    (Method::Dlt, "DLT"),
    (Method::TransLayout, "Our"),
    (Method::TransLayout2, "Our2"),
];

/// Default stencil for the 1D experiments (the paper's 1D-Heat / 1D3P).
pub fn heat1d() -> S1d3p {
    S1d3p::heat()
}

/// Print the host/ISA banner every binary emits first.
pub fn banner(what: &str) {
    println!("# {what}");
    println!(
        "# host: {} threads, best ISA: {}",
        max_threads(),
        Isa::detect_best()
    );
    println!(
        "# available ISAs: {}",
        Isa::ALL
            .into_iter()
            .filter(|i| i.is_available())
            .map(|i| i.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "# mode: {}",
        match scale() {
            Scale::Smoke => "SMOKE (CI-sized)",
            Scale::Full => "FULL",
            Scale::Quick => "quick (STENCIL_BENCH_FULL=1 for longer runs, --smoke for CI)",
        }
    );
}
