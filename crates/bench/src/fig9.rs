//! Sweep driver for Fig. 9 (scalability, 6 stencils × AVX2/AVX-512 ×
//! 4 tiled schemes × core counts) and Table 4 (mean speedups + strong
//! scaling at full core count).
//!
//! Since the erased-API redesign the six stencils are **data**, not six
//! copies of the plan-building code: a [`Workload`] table carries the
//! paper's Table-1 problem/blocking sizes per stencil name, and one
//! generic [`run_cell`] compiles a [`StencilSpec`] through
//! [`Plan::stencil`] — the same path a runtime caller would use. Every
//! cell builds one tiled plan and reuses it across repetitions.

use stencil_core::exec::{Plan, Shape, Tiling};
use stencil_core::{Method, StencilSpec};
use stencil_simd::Isa;

use crate::save::{Row, Value};
use crate::{any_grid, best_of, gflops, max_threads, Scale};

/// One measured cell of the Fig. 9 sweep.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Stencil label ("1d3p", ...).
    pub stencil: String,
    /// ISA.
    pub isa: Isa,
    /// Method label.
    pub method: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Measured GFLOP/s.
    pub gflops: f64,
}

/// Methods of the scalability experiment.
pub const METHODS: [&str; 4] = ["SDSL", "Tessellation", "Our", "Our2"];

fn tess_method(label: &str) -> Method {
    match label {
        "Tessellation" => Method::MultiLoad,
        "Our" => Method::TransLayout,
        "Our2" => Method::TransLayout2,
        _ => unreachable!(),
    }
}

/// Thread counts for the scalability axis.
pub fn thread_axis() -> Vec<usize> {
    let m = max_threads();
    let mut v: Vec<usize> = [1usize, 2, 4, 8, 12, 16, 24, 32]
        .into_iter()
        .filter(|&t| t <= m)
        .collect();
    if v.last() != Some(&m) {
        v.push(m);
    }
    v
}

/// Problem and blocking sizes for one stencil of the sweep — the
/// paper's Table 1 scaled to minutes (seconds at [`Scale::Smoke`]); the
/// quick/full sizes all exceed L3 as in §4.4.
#[derive(Copy, Clone, Debug)]
pub struct Workload {
    /// Problem extent.
    pub shape: Shape,
    /// Time steps.
    pub steps: usize,
    /// Tessellate tile base widths per dimension.
    pub tess_w: [usize; 3],
    /// Tessellate time-chunk height.
    pub tess_h: usize,
    /// Split-tiling base width (SDSL).
    pub split_w: usize,
    /// Split-tiling time-chunk height (SDSL).
    pub split_h: usize,
    /// Grid seed.
    pub seed: u64,
}

/// The Table-1 workload for a paper stencil name.
pub fn workload(name: &str, scale: Scale) -> Workload {
    let d1 = |seed| {
        let n = match scale {
            Scale::Smoke => 320_000,
            Scale::Quick => 2_560_000,
            Scale::Full => 5_120_000,
        };
        (
            Shape::d1(n),
            if scale == Scale::Smoke { 48 } else { 240 },
            seed,
        )
    };
    match name {
        "1d3p" => {
            let (shape, steps, seed) = d1(3);
            Workload {
                shape,
                steps,
                tess_w: [2_000, 0, 0],
                tess_h: 1_000,
                split_w: 1_000,
                split_h: 500,
                seed,
            }
        }
        "1d5p" => {
            let (shape, steps, seed) = d1(4);
            Workload {
                shape,
                steps,
                tess_w: [2_000, 0, 0],
                tess_h: 500,
                split_w: 1_000,
                split_h: 250,
                seed,
            }
        }
        "2d5p" => {
            let shape = match scale {
                Scale::Smoke => Shape::d2(304, 300),
                Scale::Quick => Shape::d2(1_504, 1_500),
                Scale::Full => Shape::d2(3_008, 1_500),
            };
            Workload {
                shape,
                steps: if scale == Scale::Smoke { 10 } else { 50 },
                tess_w: [200, 200, 0],
                tess_h: 50,
                split_w: 200,
                split_h: 100,
                seed: 5,
            }
        }
        "2d9p" => {
            let shape = match scale {
                Scale::Smoke => Shape::d2(304, 300),
                Scale::Quick => Shape::d2(1_504, 1_500),
                Scale::Full => Shape::d2(3_008, 1_500),
            };
            Workload {
                shape,
                steps: if scale == Scale::Smoke { 8 } else { 40 },
                tess_w: [128, 120, 0],
                tess_h: 59,
                split_w: 120,
                split_h: 60,
                seed: 6,
            }
        }
        "3d7p" => {
            let shape = match scale {
                Scale::Smoke => Shape::d3(64, 64, 64),
                Scale::Quick => Shape::d3(128, 128, 128),
                Scale::Full => Shape::d3(256, 128, 128),
            };
            Workload {
                shape,
                steps: if scale == Scale::Smoke { 8 } else { 20 },
                tess_w: [64, 24, 24],
                tess_h: 10,
                split_w: 24,
                split_h: 12,
                seed: 7,
            }
        }
        "3d27p" => {
            let shape = match scale {
                Scale::Smoke => Shape::d3(64, 64, 64),
                Scale::Quick => Shape::d3(128, 128, 128),
                Scale::Full => Shape::d3(256, 128, 128),
            };
            Workload {
                shape,
                steps: if scale == Scale::Smoke { 6 } else { 16 },
                tess_w: [64, 24, 24],
                tess_h: 10,
                split_w: 24,
                split_h: 12,
                seed: 8,
            }
        }
        other => panic!("no workload for stencil {other}"),
    }
}

/// Measure one (stencil, isa, method, threads) cell through the erased
/// API. Panics if `spec` is not one of the six paper stencils — the
/// workload table is keyed by the paper names, and a custom spec could
/// share a name with a different family (a radius-2 2D star also
/// prints "2d9p").
pub fn run_cell(spec: &StencilSpec, isa: Isa, method: &str, threads: usize, scale: Scale) -> f64 {
    let name = spec.to_string();
    assert!(
        name.parse::<StencilSpec>().as_ref() == Ok(spec),
        "run_cell drives the paper's Table-1 workloads; spec '{name}' is not one of them"
    );
    let wl = workload(&name, scale);
    let builder = Plan::new(wl.shape).isa(isa);
    let builder = match method {
        "SDSL" => builder.method(Method::Dlt).tiling(Tiling::Split {
            w: wl.split_w,
            h: wl.split_h,
            threads,
        }),
        m => builder.method(tess_method(m)).tiling(Tiling::Tessellate {
            w: wl.tess_w,
            h: wl.tess_h,
            threads,
        }),
    };
    let mut plan = builder.stencil(spec).expect("valid tiled plan");
    let init = any_grid(wl.shape, spec.radius(), wl.seed);
    let secs = best_of(2, || {
        let mut g = init.clone();
        plan.run(&mut g, wl.steps);
        std::hint::black_box(&g);
    });
    let [nx, ny, nz] = wl.shape.dims();
    let cells = nx * ny.max(1) * nz.max(1);
    gflops(cells, wl.steps, spec.flops_per_point(), secs)
}

/// Full scalability sweep (Fig. 9).
pub fn sweep(scale: Scale, stencils: &[StencilSpec]) -> Vec<Fig9Row> {
    let isas: Vec<Isa> = [Isa::Avx2, Isa::Avx512]
        .into_iter()
        .filter(|i| i.is_available())
        .collect();
    let mut rows = Vec::new();
    for spec in stencils {
        let stencil = spec.to_string();
        for &isa in &isas {
            for method in METHODS {
                for &threads in &thread_axis() {
                    let g = run_cell(spec, isa, method, threads, scale);
                    rows.push(Fig9Row {
                        stencil: stencil.clone(),
                        isa,
                        method,
                        threads,
                        gflops: g,
                    });
                    eprintln!("  measured {stencil}/{isa}/{method}/t{threads}: {g:.2} GF/s");
                }
            }
        }
    }
    rows
}

/// JSON projection for `--save-json`.
pub fn json_rows(rows: &[Fig9Row]) -> Vec<Row> {
    rows.iter()
        .map(|r| {
            vec![
                ("stencil", Value::Str(r.stencil.clone())),
                ("isa", Value::from(r.isa.name())),
                ("method", Value::from(r.method)),
                ("threads", Value::from(r.threads)),
                ("gflops", Value::from(r.gflops)),
            ]
        })
        .collect()
}

/// One Table 4 row: (stencil(isa) label, per-method (name, speedup,
/// strong-scaling) columns).
pub type Table4Row = (String, Vec<(String, f64, f64)>);

/// Table 4 view from the Fig. 9 rows: speedup over SDSL (AVX2) or over
/// Tessellation (AVX-512, where the paper has no SDSL numbers), plus
/// strong-scaling speedup at full core count.
pub fn table4(rows: &[Fig9Row]) -> Vec<Table4Row> {
    let maxt = rows.iter().map(|r| r.threads).max().unwrap_or(1);
    let mut out = Vec::new();
    for stencil in StencilSpec::NAMES {
        for isa in [Isa::Avx2, Isa::Avx512] {
            let cells: Vec<&Fig9Row> = rows
                .iter()
                .filter(|r| r.stencil == stencil && r.isa == isa && r.threads == maxt)
                .collect();
            if cells.is_empty() {
                continue;
            }
            let base_label = if isa == Isa::Avx2 {
                "SDSL"
            } else {
                "Tessellation"
            };
            let base = cells
                .iter()
                .find(|r| r.method == base_label)
                .map(|r| r.gflops)
                .unwrap_or(f64::NAN);
            let mut cols = Vec::new();
            for method in METHODS {
                let Some(cell) = cells.iter().find(|r| r.method == method) else {
                    continue;
                };
                let single = rows
                    .iter()
                    .find(|r| {
                        r.stencil == stencil && r.isa == isa && r.method == method && r.threads == 1
                    })
                    .map(|r| r.gflops)
                    .unwrap_or(f64::NAN);
                cols.push((method.to_string(), cell.gflops / base, cell.gflops / single));
            }
            out.push((format!("{stencil}({isa})"), cols));
        }
    }
    out
}
