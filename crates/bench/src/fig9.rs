//! Sweep driver for Fig. 9 (scalability, 6 stencils × AVX2/AVX-512 ×
//! 4 tiled schemes × core counts) and Table 4 (mean speedups + strong
//! scaling at full core count).

use stencil_core::{
    Box2, Box3, Method, S1d3p, S1d5p, S2d5p, S2d9p, S3d27p, S3d7p, Star1, Star2, Star3,
};
use stencil_simd::Isa;
use stencil_tiling::{
    split1_star1, split2_box, split2_star, split3_box, split3_star, tessellate1_star1,
    tessellate2_box, tessellate2_star, tessellate3_box, tessellate3_star,
};

use crate::{best_of, gflops, grid1, grid2, grid3, max_threads};

/// One measured cell of the Fig. 9 sweep.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Stencil label ("1d3p", ...).
    pub stencil: &'static str,
    /// ISA.
    pub isa: Isa,
    /// Method label.
    pub method: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Measured GFLOP/s.
    pub gflops: f64,
}

/// Methods of the scalability experiment.
pub const METHODS: [&str; 4] = ["SDSL", "Tessellation", "Our", "Our2"];

/// The six paper stencils.
pub const STENCILS: [&str; 6] = ["1d3p", "1d5p", "2d5p", "2d9p", "3d7p", "3d27p"];

fn tess_method(label: &str) -> Method {
    match label {
        "Tessellation" => Method::MultiLoad,
        "Our" => Method::TransLayout,
        "Our2" => Method::TransLayout2,
        _ => unreachable!(),
    }
}

/// Thread counts for the scalability axis.
pub fn thread_axis() -> Vec<usize> {
    let m = max_threads();
    let mut v: Vec<usize> = [1usize, 2, 4, 8, 12, 16, 24, 32]
        .into_iter()
        .filter(|&t| t <= m)
        .collect();
    if v.last() != Some(&m) {
        v.push(m);
    }
    v
}

/// Measure one (stencil, isa, method, threads) cell. Problem sizes are the
/// paper's Table 1 scaled to minutes; all exceed L3 as in §4.4.
pub fn run_cell(stencil: &str, isa: Isa, method: &str, threads: usize, full: bool) -> f64 {
    let scale = if full { 2 } else { 1 };
    match stencil {
        "1d3p" => {
            let (n, t, w) = (2_560_000 * scale, 240, 2_000);
            let s = S1d3p::heat();
            let init = grid1(n, 3);
            let h = w / 2;
            let secs = best_of(2, || {
                let mut g = init.clone();
                match method {
                    "SDSL" => split1_star1(isa, &mut g, &s, t, w / 2, h / 2, threads),
                    m => tessellate1_star1(tess_method(m), isa, &mut g, &s, t, w, h, threads),
                }
                std::hint::black_box(&g);
            });
            gflops(n, t, S1d3p::flops_per_point(), secs)
        }
        "1d5p" => {
            let (n, t, w) = (2_560_000 * scale, 240, 2_000);
            let s = S1d5p::heat();
            let init = grid1(n, 4);
            let h = w / 4;
            let secs = best_of(2, || {
                let mut g = init.clone();
                match method {
                    "SDSL" => split1_star1(isa, &mut g, &s, t, w / 2, h / 2, threads),
                    m => tessellate1_star1(tess_method(m), isa, &mut g, &s, t, w, h, threads),
                }
                std::hint::black_box(&g);
            });
            gflops(n, t, S1d5p::flops_per_point(), secs)
        }
        "2d5p" => {
            let (nx, ny, t) = (1_504 * scale, 1_500, 50);
            let s = S2d5p::heat();
            let init = grid2(nx, ny, 5);
            let (wx, wy, h) = (200, 200, 50);
            let secs = best_of(2, || {
                let mut g = init.clone();
                match method {
                    "SDSL" => split2_star(isa, &mut g, &s, t, wy, wy / 2, threads),
                    m => tessellate2_star(tess_method(m), isa, &mut g, &s, t, wx, wy, h, threads),
                }
                std::hint::black_box(&g);
            });
            gflops(nx * ny, t, S2d5p::flops_per_point(), secs)
        }
        "2d9p" => {
            let (nx, ny, t) = (1_504 * scale, 1_500, 40);
            let s = S2d9p::blur();
            let init = grid2(nx, ny, 6);
            let (wx, wy, h) = (128, 120, 60.min(59));
            let secs = best_of(2, || {
                let mut g = init.clone();
                match method {
                    "SDSL" => split2_box(isa, &mut g, &s, t, wy, wy / 2, threads),
                    m => tessellate2_box(tess_method(m), isa, &mut g, &s, t, wx, wy, h, threads),
                }
                std::hint::black_box(&g);
            });
            gflops(nx * ny, t, S2d9p::flops_per_point(), secs)
        }
        "3d7p" => {
            let (nx, ny, nz, t) = (128 * scale, 128, 128, 20);
            let s = S3d7p::heat();
            let init = grid3(nx, ny, nz, 7);
            let (wx, wy, wz, h) = (64, 24, 24, 10);
            let secs = best_of(2, || {
                let mut g = init.clone();
                match method {
                    "SDSL" => split3_star(isa, &mut g, &s, t, wz, wz / 2, threads),
                    m => {
                        tessellate3_star(tess_method(m), isa, &mut g, &s, t, wx, wy, wz, h, threads)
                    }
                }
                std::hint::black_box(&g);
            });
            gflops(nx * ny * nz, t, S3d7p::flops_per_point(), secs)
        }
        "3d27p" => {
            let (nx, ny, nz, t) = (128 * scale, 128, 128, 16);
            let s = S3d27p::blur();
            let init = grid3(nx, ny, nz, 8);
            let (wx, wy, wz, h) = (64, 24, 24, 10);
            let secs = best_of(2, || {
                let mut g = init.clone();
                match method {
                    "SDSL" => split3_box(isa, &mut g, &s, t, wz, wz / 2, threads),
                    m => {
                        tessellate3_box(tess_method(m), isa, &mut g, &s, t, wx, wy, wz, h, threads)
                    }
                }
                std::hint::black_box(&g);
            });
            gflops(nx * ny * nz, t, S3d27p::flops_per_point(), secs)
        }
        _ => panic!("unknown stencil {stencil}"),
    }
}

/// Full scalability sweep (Fig. 9).
pub fn sweep(full: bool, stencils: &[&'static str]) -> Vec<Fig9Row> {
    let isas: Vec<Isa> = [Isa::Avx2, Isa::Avx512]
        .into_iter()
        .filter(|i| i.is_available())
        .collect();
    let mut rows = Vec::new();
    for &stencil in stencils {
        for &isa in &isas {
            for method in METHODS {
                for &threads in &thread_axis() {
                    let g = run_cell(stencil, isa, method, threads, full);
                    rows.push(Fig9Row {
                        stencil,
                        isa,
                        method,
                        threads,
                        gflops: g,
                    });
                    eprintln!(
                        "  measured {stencil}/{isa}/{method}/t{threads}: {g:.2} GF/s"
                    );
                }
            }
        }
    }
    rows
}

/// Table 4 view from the Fig. 9 rows: speedup over SDSL (AVX2) or over
/// Tessellation (AVX-512, where the paper has no SDSL numbers), plus
/// strong-scaling speedup at full core count.
pub fn table4(rows: &[Fig9Row]) -> Vec<(String, Vec<(String, f64, f64)>)> {
    let maxt = rows.iter().map(|r| r.threads).max().unwrap_or(1);
    let mut out = Vec::new();
    for stencil in STENCILS {
        for isa in [Isa::Avx2, Isa::Avx512] {
            let cells: Vec<&Fig9Row> = rows
                .iter()
                .filter(|r| r.stencil == stencil && r.isa == isa && r.threads == maxt)
                .collect();
            if cells.is_empty() {
                continue;
            }
            let base_label = if isa == Isa::Avx2 { "SDSL" } else { "Tessellation" };
            let base = cells
                .iter()
                .find(|r| r.method == base_label)
                .map(|r| r.gflops)
                .unwrap_or(f64::NAN);
            let mut cols = Vec::new();
            for method in METHODS {
                let Some(cell) = cells.iter().find(|r| r.method == method) else {
                    continue;
                };
                let single = rows
                    .iter()
                    .find(|r| {
                        r.stencil == stencil && r.isa == isa && r.method == method && r.threads == 1
                    })
                    .map(|r| r.gflops)
                    .unwrap_or(f64::NAN);
                cols.push((method.to_string(), cell.gflops / base, cell.gflops / single));
            }
            out.push((format!("{stencil}({isa})"), cols));
        }
    }
    out
}
