//! Sweep driver for Fig. 9 (scalability, 6 stencils × AVX2/AVX-512 ×
//! 4 tiled schemes × core counts) and Table 4 (mean speedups + strong
//! scaling at full core count).
//!
//! Every cell builds one tiled [`Plan`] and reuses it across repetitions.

use stencil_core::exec::{Plan, Shape, Tiling};
use stencil_core::{
    Box2, Box3, Method, S1d3p, S1d5p, S2d5p, S2d9p, S3d27p, S3d7p, Star1, Star2, Star3,
};
use stencil_simd::Isa;

use crate::save::{Row, Value};
use crate::{best_of, gflops, grid1, grid2, grid3, max_threads, Scale};

/// One measured cell of the Fig. 9 sweep.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Stencil label ("1d3p", ...).
    pub stencil: &'static str,
    /// ISA.
    pub isa: Isa,
    /// Method label.
    pub method: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Measured GFLOP/s.
    pub gflops: f64,
}

/// Methods of the scalability experiment.
pub const METHODS: [&str; 4] = ["SDSL", "Tessellation", "Our", "Our2"];

/// The six paper stencils.
pub const STENCILS: [&str; 6] = ["1d3p", "1d5p", "2d5p", "2d9p", "3d7p", "3d27p"];

fn tess_method(label: &str) -> Method {
    match label {
        "Tessellation" => Method::MultiLoad,
        "Our" => Method::TransLayout,
        "Our2" => Method::TransLayout2,
        _ => unreachable!(),
    }
}

/// Thread counts for the scalability axis.
pub fn thread_axis() -> Vec<usize> {
    let m = max_threads();
    let mut v: Vec<usize> = [1usize, 2, 4, 8, 12, 16, 24, 32]
        .into_iter()
        .filter(|&t| t <= m)
        .collect();
    if v.last() != Some(&m) {
        v.push(m);
    }
    v
}

/// Measure one (stencil, isa, method, threads) cell. Problem sizes are the
/// paper's Table 1 scaled to minutes (seconds at `Scale::Smoke`); the
/// quick/full sizes all exceed L3 as in §4.4.
pub fn run_cell(stencil: &str, isa: Isa, method: &str, threads: usize, scale: Scale) -> f64 {
    match stencil {
        "1d3p" => {
            let (n, t, w) = match scale {
                Scale::Smoke => (320_000, 48, 2_000),
                Scale::Quick => (2_560_000, 240, 2_000),
                Scale::Full => (5_120_000, 240, 2_000),
            };
            let s = S1d3p::heat();
            let init = grid1(n, 3);
            let h = w / 2;
            let mut plan = match method {
                "SDSL" => Plan::new(Shape::d1(n))
                    .method(Method::Dlt)
                    .isa(isa)
                    .tiling(Tiling::Split {
                        w: w / 2,
                        h: h / 2,
                        threads,
                    })
                    .star1(s),
                m => Plan::new(Shape::d1(n))
                    .method(tess_method(m))
                    .isa(isa)
                    .tiling(Tiling::Tessellate {
                        w: [w, 0, 0],
                        h,
                        threads,
                    })
                    .star1(s),
            }
            .expect("valid tiled plan");
            let secs = best_of(2, || {
                let mut g = init.clone();
                plan.run(&mut g, t);
                std::hint::black_box(&g);
            });
            gflops(n, t, S1d3p::flops_per_point(), secs)
        }
        "1d5p" => {
            let (n, t, w) = match scale {
                Scale::Smoke => (320_000, 48, 2_000),
                Scale::Quick => (2_560_000, 240, 2_000),
                Scale::Full => (5_120_000, 240, 2_000),
            };
            let s = S1d5p::heat();
            let init = grid1(n, 4);
            let h = w / 4;
            let mut plan = match method {
                "SDSL" => Plan::new(Shape::d1(n))
                    .method(Method::Dlt)
                    .isa(isa)
                    .tiling(Tiling::Split {
                        w: w / 2,
                        h: h / 2,
                        threads,
                    })
                    .star1(s),
                m => Plan::new(Shape::d1(n))
                    .method(tess_method(m))
                    .isa(isa)
                    .tiling(Tiling::Tessellate {
                        w: [w, 0, 0],
                        h,
                        threads,
                    })
                    .star1(s),
            }
            .expect("valid tiled plan");
            let secs = best_of(2, || {
                let mut g = init.clone();
                plan.run(&mut g, t);
                std::hint::black_box(&g);
            });
            gflops(n, t, S1d5p::flops_per_point(), secs)
        }
        "2d5p" => {
            let (nx, ny, t) = match scale {
                Scale::Smoke => (304, 300, 10),
                Scale::Quick => (1_504, 1_500, 50),
                Scale::Full => (3_008, 1_500, 50),
            };
            let s = S2d5p::heat();
            let init = grid2(nx, ny, 5);
            let (wx, wy, h) = (200, 200, 50);
            let mut plan = match method {
                "SDSL" => Plan::new(Shape::d2(nx, ny))
                    .method(Method::Dlt)
                    .isa(isa)
                    .tiling(Tiling::Split {
                        w: wy,
                        h: wy / 2,
                        threads,
                    })
                    .star2(s),
                m => Plan::new(Shape::d2(nx, ny))
                    .method(tess_method(m))
                    .isa(isa)
                    .tiling(Tiling::Tessellate {
                        w: [wx, wy, 0],
                        h,
                        threads,
                    })
                    .star2(s),
            }
            .expect("valid tiled plan");
            let secs = best_of(2, || {
                let mut g = init.clone();
                plan.run(&mut g, t);
                std::hint::black_box(&g);
            });
            gflops(nx * ny, t, S2d5p::flops_per_point(), secs)
        }
        "2d9p" => {
            let (nx, ny, t) = match scale {
                Scale::Smoke => (304, 300, 8),
                Scale::Quick => (1_504, 1_500, 40),
                Scale::Full => (3_008, 1_500, 40),
            };
            let s = S2d9p::blur();
            let init = grid2(nx, ny, 6);
            let (wx, wy, h) = (128, 120, 59);
            let mut plan = match method {
                "SDSL" => Plan::new(Shape::d2(nx, ny))
                    .method(Method::Dlt)
                    .isa(isa)
                    .tiling(Tiling::Split {
                        w: wy,
                        h: wy / 2,
                        threads,
                    })
                    .box2(s),
                m => Plan::new(Shape::d2(nx, ny))
                    .method(tess_method(m))
                    .isa(isa)
                    .tiling(Tiling::Tessellate {
                        w: [wx, wy, 0],
                        h,
                        threads,
                    })
                    .box2(s),
            }
            .expect("valid tiled plan");
            let secs = best_of(2, || {
                let mut g = init.clone();
                plan.run(&mut g, t);
                std::hint::black_box(&g);
            });
            gflops(nx * ny, t, S2d9p::flops_per_point(), secs)
        }
        "3d7p" => {
            let (nx, ny, nz, t) = match scale {
                Scale::Smoke => (64, 64, 64, 8),
                Scale::Quick => (128, 128, 128, 20),
                Scale::Full => (256, 128, 128, 20),
            };
            let s = S3d7p::heat();
            let init = grid3(nx, ny, nz, 7);
            let (wx, wy, wz, h) = (64, 24, 24, 10);
            let mut plan = match method {
                "SDSL" => Plan::new(Shape::d3(nx, ny, nz))
                    .method(Method::Dlt)
                    .isa(isa)
                    .tiling(Tiling::Split {
                        w: wz,
                        h: wz / 2,
                        threads,
                    })
                    .star3(s),
                m => Plan::new(Shape::d3(nx, ny, nz))
                    .method(tess_method(m))
                    .isa(isa)
                    .tiling(Tiling::Tessellate {
                        w: [wx, wy, wz],
                        h,
                        threads,
                    })
                    .star3(s),
            }
            .expect("valid tiled plan");
            let secs = best_of(2, || {
                let mut g = init.clone();
                plan.run(&mut g, t);
                std::hint::black_box(&g);
            });
            gflops(nx * ny * nz, t, S3d7p::flops_per_point(), secs)
        }
        "3d27p" => {
            let (nx, ny, nz, t) = match scale {
                Scale::Smoke => (64, 64, 64, 6),
                Scale::Quick => (128, 128, 128, 16),
                Scale::Full => (256, 128, 128, 16),
            };
            let s = S3d27p::blur();
            let init = grid3(nx, ny, nz, 8);
            let (wx, wy, wz, h) = (64, 24, 24, 10);
            let mut plan = match method {
                "SDSL" => Plan::new(Shape::d3(nx, ny, nz))
                    .method(Method::Dlt)
                    .isa(isa)
                    .tiling(Tiling::Split {
                        w: wz,
                        h: wz / 2,
                        threads,
                    })
                    .box3(s),
                m => Plan::new(Shape::d3(nx, ny, nz))
                    .method(tess_method(m))
                    .isa(isa)
                    .tiling(Tiling::Tessellate {
                        w: [wx, wy, wz],
                        h,
                        threads,
                    })
                    .box3(s),
            }
            .expect("valid tiled plan");
            let secs = best_of(2, || {
                let mut g = init.clone();
                plan.run(&mut g, t);
                std::hint::black_box(&g);
            });
            gflops(nx * ny * nz, t, S3d27p::flops_per_point(), secs)
        }
        _ => panic!("unknown stencil {stencil}"),
    }
}

/// Full scalability sweep (Fig. 9).
pub fn sweep(scale: Scale, stencils: &[&'static str]) -> Vec<Fig9Row> {
    let isas: Vec<Isa> = [Isa::Avx2, Isa::Avx512]
        .into_iter()
        .filter(|i| i.is_available())
        .collect();
    let mut rows = Vec::new();
    for &stencil in stencils {
        for &isa in &isas {
            for method in METHODS {
                for &threads in &thread_axis() {
                    let g = run_cell(stencil, isa, method, threads, scale);
                    rows.push(Fig9Row {
                        stencil,
                        isa,
                        method,
                        threads,
                        gflops: g,
                    });
                    eprintln!("  measured {stencil}/{isa}/{method}/t{threads}: {g:.2} GF/s");
                }
            }
        }
    }
    rows
}

/// JSON projection for `--save-json`.
pub fn json_rows(rows: &[Fig9Row]) -> Vec<Row> {
    rows.iter()
        .map(|r| {
            vec![
                ("stencil", Value::from(r.stencil)),
                ("isa", Value::from(r.isa.name())),
                ("method", Value::from(r.method)),
                ("threads", Value::from(r.threads)),
                ("gflops", Value::from(r.gflops)),
            ]
        })
        .collect()
}

/// One Table 4 row: (stencil(isa) label, per-method (name, speedup,
/// strong-scaling) columns).
pub type Table4Row = (String, Vec<(String, f64, f64)>);

/// Table 4 view from the Fig. 9 rows: speedup over SDSL (AVX2) or over
/// Tessellation (AVX-512, where the paper has no SDSL numbers), plus
/// strong-scaling speedup at full core count.
pub fn table4(rows: &[Fig9Row]) -> Vec<Table4Row> {
    let maxt = rows.iter().map(|r| r.threads).max().unwrap_or(1);
    let mut out = Vec::new();
    for stencil in STENCILS {
        for isa in [Isa::Avx2, Isa::Avx512] {
            let cells: Vec<&Fig9Row> = rows
                .iter()
                .filter(|r| r.stencil == stencil && r.isa == isa && r.threads == maxt)
                .collect();
            if cells.is_empty() {
                continue;
            }
            let base_label = if isa == Isa::Avx2 {
                "SDSL"
            } else {
                "Tessellation"
            };
            let base = cells
                .iter()
                .find(|r| r.method == base_label)
                .map(|r| r.gflops)
                .unwrap_or(f64::NAN);
            let mut cols = Vec::new();
            for method in METHODS {
                let Some(cell) = cells.iter().find(|r| r.method == method) else {
                    continue;
                };
                let single = rows
                    .iter()
                    .find(|r| {
                        r.stencil == stencil && r.isa == isa && r.method == method && r.threads == 1
                    })
                    .map(|r| r.gflops)
                    .unwrap_or(f64::NAN);
                cols.push((method.to_string(), cell.gflops / base, cell.gflops / single));
            }
            out.push((format!("{stencil}({isa})"), cols));
        }
    }
    out
}
