//! Sweep driver for Fig. 8 (multicore cache-blocking experiments) and
//! Table 3 (speedups over SDSL per storage level × blocking level), 1D3P.
//!
//! Each (size, blocking, method) cell builds one tiled plan through the
//! erased API ([`Plan::stencil`]) — pool and buffers are constructed
//! once — and reuses it across repetitions.

use stencil_core::exec::tile::DimTiling;
use stencil_core::exec::{Plan, Shape, Tiling};
use stencil_core::{Method, StencilSpec};
use stencil_simd::Isa;

use crate::save::{Row, Value};
use crate::{best_of, gflops, grid1, max_threads, storage_level, Scale};

/// One measured cell of the Fig. 8 sweep.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Grid cells.
    pub n: usize,
    /// Working-set label.
    pub level: &'static str,
    /// Blocking level label ("L1"/"L2") — the tile working set.
    pub blocking: &'static str,
    /// Method label.
    pub method: &'static str,
    /// Time steps.
    pub steps: usize,
    /// Measured GFLOP/s (all cores).
    pub gflops: f64,
}

/// The four tiled schemes of Fig. 8.
pub const TILED_METHODS: [&str; 4] = ["SDSL", "Tessellation", "Our", "Our2"];

/// Tile base width for a blocking level (tile working set ≈ 2·8·w bytes;
/// L1 ≈ 24 KiB, L2 ≈ 640 KiB).
pub fn block_width(blocking: &str) -> usize {
    match blocking {
        "L1" => 1_500,
        "L2" => 40_000,
        _ => panic!("unknown blocking level"),
    }
}

/// Problem sizes from L3 into memory.
pub fn sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![1_000_000],
        Scale::Quick => vec![1_000_000, 4_000_000, 16_000_000],
        Scale::Full => vec![
            1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000, 32_000_000,
        ],
    }
}

/// One (size, blocking) cell of the sweep: problem size, steps, and the
/// tile geometry shared by all four methods.
struct CellCfg {
    n: usize,
    steps: usize,
    w: usize,
    h: usize,
    thr: usize,
}

fn run_one(spec: &StencilSpec, method: &str, isa: Isa, c: &CellCfg) -> f64 {
    let CellCfg {
        n,
        steps,
        w,
        h,
        thr,
    } = *c;
    let init = grid1(n, 13);
    let tiling = match method {
        "SDSL" => {
            // split tiling works in DLT column space; same tile working
            // set ⇒ same column count w (cells per column tile = w·vl ⇒
            // divide to keep the byte budget).
            let wj = (w / 2).max(32);
            let hj = h.min(DimTiling::new(n / isa.lanes().max(1), wj, 1, false).max_height());
            Tiling::Split {
                w: wj,
                h: hj,
                threads: thr,
            }
        }
        _ => Tiling::Tessellate {
            w: [w, 0, 0],
            h,
            threads: thr,
        },
    };
    let m = match method {
        "SDSL" => Method::Dlt,
        "Tessellation" => Method::MultiLoad,
        "Our" => Method::TransLayout,
        "Our2" => Method::TransLayout2,
        _ => unreachable!(),
    };
    let mut plan = Plan::new(Shape::d1(n))
        .method(m)
        .isa(isa)
        .tiling(tiling)
        .stencil(spec)
        .expect("valid tiled plan");
    best_of(2, || {
        let mut g = init.clone();
        plan.run(&mut g, steps);
        std::hint::black_box(&g);
    })
}

/// Run the multicore cache-blocking sweep.
pub fn sweep(isa: Isa, base_steps: usize, scale: Scale) -> Vec<Fig8Row> {
    let spec = StencilSpec::heat_1d3p();
    let thr = max_threads();
    let mut rows = Vec::new();
    for n in sizes(scale) {
        let steps = (base_steps * 4_000_000 / n).clamp(64, base_steps) / 2 * 2;
        let level = storage_level(2 * 8 * n);
        for blocking in ["L1", "L2"] {
            let w = block_width(blocking);
            let h = (w / 2).min(steps).max(1);
            let cell = CellCfg {
                n,
                steps,
                w,
                h,
                thr,
            };
            for method in TILED_METHODS {
                let secs = run_one(&spec, method, isa, &cell);
                rows.push(Fig8Row {
                    n,
                    level,
                    blocking,
                    method,
                    steps,
                    gflops: gflops(n, steps, spec.flops_per_point(), secs),
                });
            }
        }
    }
    rows
}

/// JSON projection for `--save-json`.
pub fn json_rows(rows: &[Fig8Row]) -> Vec<Row> {
    rows.iter()
        .map(|r| {
            vec![
                ("n", Value::from(r.n)),
                ("level", Value::from(r.level)),
                ("blocking", Value::from(r.blocking)),
                ("method", Value::from(r.method)),
                ("steps", Value::from(r.steps)),
                ("gflops", Value::from(r.gflops)),
            ]
        })
        .collect()
}

/// One Table 3 row: (storage level, blocking level, per-method speedups).
pub type Table3Row = (String, String, Vec<(String, f64)>);

/// Table 3 view: geometric-mean speedup over SDSL per (storage level,
/// blocking level).
pub fn table3(rows: &[Fig8Row]) -> Vec<Table3Row> {
    let mut out = Vec::new();
    let levels: Vec<&str> = {
        let mut v: Vec<&str> = rows.iter().map(|r| r.level).collect();
        v.dedup();
        v
    };
    for level in levels {
        for blocking in ["L1", "L2"] {
            let mut cols = Vec::new();
            for method in &TILED_METHODS[1..] {
                let mut prod = 1.0;
                let mut cnt = 0;
                for r in rows
                    .iter()
                    .filter(|r| r.level == level && r.blocking == blocking && r.method == *method)
                {
                    if let Some(base) = rows.iter().find(|b| {
                        b.level == level
                            && b.blocking == blocking
                            && b.n == r.n
                            && b.method == "SDSL"
                    }) {
                        prod *= r.gflops / base.gflops;
                        cnt += 1;
                    }
                }
                if cnt > 0 {
                    cols.push((method.to_string(), prod.powf(1.0 / cnt as f64)));
                }
            }
            if !cols.is_empty() {
                out.push((level.to_string(), blocking.to_string(), cols));
            }
        }
    }
    out
}
