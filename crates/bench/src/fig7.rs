//! Sweep driver for Fig. 7 (sequential block-free experiments) and
//! Table 2 (speedups per storage level), 1D3P.
//!
//! Each (size, method) cell builds one plan through the erased API
//! ([`Plan::stencil`]) and reuses it across repetitions — the timed
//! region still includes the per-call layout round-trip, matching the
//! paper's Fig. 7 accounting, but scratch allocation is amortized the
//! way a production caller would.

use stencil_core::exec::{Parallelism, Plan, Shape};
use stencil_core::StencilSpec;
use stencil_simd::Isa;

use crate::save::{Row, Value};
use crate::{best_of, gflops, grid1, storage_level, Scale, SEQ_METHODS};

/// One measured cell of the Fig. 7 sweep.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Grid cells.
    pub n: usize,
    /// Working-set label (two arrays).
    pub level: &'static str,
    /// Time steps.
    pub steps: usize,
    /// Method label.
    pub method: &'static str,
    /// Measured GFLOP/s.
    pub gflops: f64,
}

/// Problem sizes sweeping the hierarchy from L1 to memory (cells; working
/// set is 2 arrays × 8 B × n).
pub fn sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![1_000, 32_000, 500_000],
        Scale::Quick => vec![1_000, 4_000, 32_000, 250_000, 2_000_000, 8_000_000],
        Scale::Full => vec![
            1_000, 4_000, 16_000, 64_000, 250_000, 1_000_000, 4_000_000, 10_240_000,
        ],
    }
}

/// Run the sequential block-free sweep at a given base step count
/// (the paper uses T = 1000 and T = 10000; we keep the 10× ratio).
pub fn sweep(isa: Isa, base_steps: usize, scale: Scale) -> Vec<Fig7Row> {
    let spec = StencilSpec::heat_1d3p();
    let mut rows = Vec::new();
    for n in sizes(scale) {
        // Keep per-cell work roughly constant across sizes: larger grids
        // get fewer steps, with a floor that preserves layout-transform
        // amortization effects (DLT's weakness at small T).
        let steps = (base_steps * 1_000_000 / n).clamp(base_steps / 10 + 2, base_steps) / 2 * 2;
        let level = storage_level(2 * 8 * n);
        for (m, label) in SEQ_METHODS {
            let init = grid1(n, 7);
            let mut plan = Plan::new(Shape::d1(n))
                .method(m)
                .isa(isa)
                .parallelism(Parallelism::Off)
                .stencil(&spec)
                .expect("valid plan");
            let reps = if n <= 64_000 { 3 } else { 2 };
            let secs = best_of(reps, || {
                let mut g = init.clone();
                plan.run(&mut g, steps);
                std::hint::black_box(&g);
            });
            rows.push(Fig7Row {
                n,
                level,
                steps,
                method: label,
                gflops: gflops(n, steps, spec.flops_per_point(), secs),
            });
        }
    }
    rows
}

/// JSON projection for `--save-json`.
pub fn json_rows(rows: &[Fig7Row]) -> Vec<Row> {
    rows.iter()
        .map(|r| {
            vec![
                ("n", Value::from(r.n)),
                ("level", Value::from(r.level)),
                ("steps", Value::from(r.steps)),
                ("method", Value::from(r.method)),
                ("gflops", Value::from(r.gflops)),
            ]
        })
        .collect()
}

/// Table 2 view: geometric-mean speedup over MultiLoad per storage level.
pub fn table2(rows: &[Fig7Row]) -> Vec<(String, Vec<(String, f64)>)> {
    let levels = ["L1", "L2", "L3", "Mem"];
    let methods: Vec<&str> = SEQ_METHODS.iter().map(|(_, l)| *l).collect();
    let mut out = Vec::new();
    for level in levels {
        let mut cols = Vec::new();
        for &m in &methods[1..] {
            // speedup vs MultiLoad at identical (n, steps)
            let mut prod = 1.0f64;
            let mut cnt = 0usize;
            for r in rows.iter().filter(|r| r.level == level && r.method == m) {
                if let Some(base) = rows
                    .iter()
                    .find(|b| b.level == level && b.n == r.n && b.method == "MultiLoad")
                {
                    prod *= r.gflops / base.gflops;
                    cnt += 1;
                }
            }
            if cnt > 0 {
                cols.push((m.to_string(), prod.powf(1.0 / cnt as f64)));
            }
        }
        if !cols.is_empty() {
            out.push((level.to_string(), cols));
        }
    }
    // overall geometric mean row
    let mut mean_cols = Vec::new();
    let methods_present: Vec<String> = out
        .first()
        .map(|(_, c)| c.iter().map(|(m, _)| m.clone()).collect())
        .unwrap_or_default();
    for m in methods_present {
        let vals: Vec<f64> = out
            .iter()
            .filter_map(|(_, cols)| cols.iter().find(|(mm, _)| *mm == m).map(|(_, v)| *v))
            .collect();
        if !vals.is_empty() {
            let gm = vals.iter().product::<f64>().powf(1.0 / vals.len() as f64);
            mean_cols.push((m, gm));
        }
    }
    out.push(("Mean".to_string(), mean_cols));
    out
}
