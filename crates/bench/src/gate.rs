//! Performance-regression gate over `BENCH_*.json` snapshots.
//!
//! CI runs the `plan_reuse` and `scaling` microbenchmarks with
//! `--save-json`, then diffs the fresh snapshots against the committed
//! `BENCH_baseline/` directory: rows are matched on their identity fields
//! (everything except the measured metrics), per-row regression ratios
//! are combined into a geometric mean, and the job fails when the geomean
//! regresses past the threshold (default 15%). The geomean keeps one
//! noisy cell from failing the gate while still catching a broad
//! slowdown; the committed baseline is refreshed with `--rebaseline`
//! whenever the canonical runner class or an intentional perf trade-off
//! changes (see CONTRIBUTING.md).
//!
//! Absolute wall times only gate **between like hosts**: each snapshot
//! carries a host fingerprint (`best_isa`, `host_threads`), and when the
//! baseline's fingerprint differs from the current run's the diff is
//! reported as advisory instead of failing the job (override with
//! `--strict`) — a baseline recorded on a 1-core AVX-512 dev box must
//! not fail every commit on a 4-core AVX2 runner, nor vacuously pass a
//! faster one.
//!
//! The parser below covers the JSON subset `save.rs` emits (and any
//! well-formed document without exponent-free edge cases it might grow).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Fields that hold measurements rather than identity. `saturated`
/// (thread count above the host's parallelism) is host-dependent like
/// `host_threads`: treating it as identity would unmatch every
/// oversubscribed row between hosts of different core counts.
pub const METRIC_FIELDS: [&str; 5] = [
    "seconds",
    "gflops",
    "speedup_vs_off",
    "host_threads",
    "saturated",
];

/// A parsed JSON value (owned, order-preserving objects).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64, which covers the emitted range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry the byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot comparison
// ---------------------------------------------------------------------------

/// Identity of one measured row: every non-metric field, rendered.
fn row_key(row: &Json) -> String {
    let Json::Obj(fields) = row else {
        return String::new();
    };
    let mut parts: Vec<String> = fields
        .iter()
        .filter(|(k, _)| !METRIC_FIELDS.contains(&k.as_str()))
        .map(|(k, v)| format!("{k}={v:?}"))
        .collect();
    parts.sort();
    parts.join("|")
}

/// Regression ratio for one matched row pair: > 1 means the current run
/// is slower than baseline. Prefers wall seconds; falls back to GFLOP/s.
fn row_ratio(base: &Json, cur: &Json) -> Option<f64> {
    if let (Some(b), Some(c)) = (
        base.get("seconds").and_then(Json::as_f64),
        cur.get("seconds").and_then(Json::as_f64),
    ) {
        if b > 0.0 && c > 0.0 {
            return Some(c / b);
        }
    }
    if let (Some(b), Some(c)) = (
        base.get("gflops").and_then(Json::as_f64),
        cur.get("gflops").and_then(Json::as_f64),
    ) {
        if b > 0.0 && c > 0.0 {
            return Some(b / c);
        }
    }
    None
}

/// Outcome of diffing one benchmark snapshot against baseline.
#[derive(Debug)]
pub struct FileDiff {
    /// Benchmark name (`BENCH_<name>.json`).
    pub name: String,
    /// Per-row regression ratios (current/baseline wall time).
    pub ratios: Vec<f64>,
    /// Rows present only in the current snapshot — typically a freshly
    /// added bench family the committed baseline predates. These are
    /// **informational**, never a failure: they gate only after the
    /// baseline is re-armed with `--rebaseline`.
    pub new_rows: usize,
    /// Rows present only in the baseline — a bench family the current
    /// run no longer produces (renamed or removed; re-arm to clear).
    pub missing_rows: usize,
    /// Set when the baseline was recorded on a different host class
    /// (ISA / core count): absolute wall-time comparison is then
    /// advisory, not a gate (describes the mismatch).
    pub host_mismatch: Option<String>,
}

/// Top-level host fingerprint of a snapshot (`best_isa`, `host_threads`).
fn fingerprint(doc: &Json) -> (String, i64) {
    let isa = match doc.get("best_isa") {
        Some(Json::Str(s)) => s.clone(),
        _ => "?".into(),
    };
    let threads = doc
        .get("host_threads")
        .and_then(Json::as_f64)
        .map(|v| v as i64)
        .unwrap_or(-1);
    (isa, threads)
}

impl FileDiff {
    /// Geometric mean of this file's ratios (1.0 when empty).
    pub fn geomean(&self) -> f64 {
        geomean(&self.ratios)
    }
}

/// Geometric mean (1.0 for an empty slice).
pub fn geomean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
}

/// Keyed rows of one snapshot plus its host fingerprint.
type Snapshot = (BTreeMap<String, Json>, (String, i64));

/// Diff one `BENCH_<name>.json` pair.
pub fn diff_file(name: &str, baseline: &Path, current: &Path) -> Result<FileDiff, String> {
    let load = |dir: &Path| -> Result<Snapshot, String> {
        let path = dir.join(format!("BENCH_{name}.json"));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let fp = fingerprint(&doc);
        let Some(Json::Arr(rows)) = doc.get("rows") else {
            return Err(format!("{}: no rows array", path.display()));
        };
        Ok((rows.iter().map(|r| (row_key(r), r.clone())).collect(), fp))
    };
    let (base, base_fp) = load(baseline)?;
    let (cur, cur_fp) = load(current)?;
    let host_mismatch = (base_fp != cur_fp).then(|| {
        format!(
            "baseline host {}x{} vs current {}x{}",
            base_fp.1, base_fp.0, cur_fp.1, cur_fp.0
        )
    });
    let mut ratios = Vec::new();
    let mut missing_rows = 0usize;
    for (key, brow) in &base {
        match cur.get(key) {
            Some(crow) => {
                if let Some(r) = row_ratio(brow, crow) {
                    ratios.push(r);
                }
            }
            None => missing_rows += 1,
        }
    }
    let new_rows = cur.keys().filter(|k| !base.contains_key(*k)).count();
    Ok(FileDiff {
        name: name.to_string(),
        ratios,
        new_rows,
        missing_rows,
        host_mismatch,
    })
}

// ---------------------------------------------------------------------------
// Boundary parity
// ---------------------------------------------------------------------------

/// A non-Dirichlet row paired with the Dirichlet row sharing every other
/// identity field — both from the **same** snapshot, so the comparison is
/// within one host and one build.
#[derive(Debug)]
pub struct ParityPair {
    /// Identity of the Dirichlet sibling row.
    pub key: String,
    /// Boundary label of the non-Dirichlet row (`periodic` / `reflect`).
    pub boundary: String,
    /// Wall-time ratio non-Dirichlet / Dirichlet (> 1 means the
    /// refreshed boundary is slower).
    pub ratio: f64,
}

/// The identity the Dirichlet sibling of `row` would have, plus the
/// boundary label — `None` when `row` is itself a Dirichlet row. Only
/// rows with an explicit `boundary` field participate (plan_reuse's
/// session rows — the sibling is the same identity without the field):
/// those are steady-state sessions where the fused fast path owes
/// near-parity. Scaling's `base@boundary` workloads are deliberately
/// *not* paired — their sequential rows run the k = 1 methods, whose
/// per-step O(surface) refresh is visible at smoke sizes by design.
fn dirichlet_sibling(row: &Json) -> Option<(String, String)> {
    let Json::Obj(fields) = row else { return None };
    let Some(Json::Str(b)) = row.get("boundary") else {
        return None;
    };
    let rest: Vec<(String, Json)> = fields
        .iter()
        .filter(|(k, _)| k != "boundary")
        .cloned()
        .collect();
    Some((row_key(&Json::Obj(rest)), b.clone()))
}

/// Pair every non-Dirichlet row of `BENCH_<name>.json` under `dir` with
/// its Dirichlet sibling (sharing every identity field but `boundary`)
/// and return the wall-time ratios. Rows without a sibling are skipped
/// (e.g. thread counts only the boundary family sweeps).
pub fn boundary_parity(name: &str, dir: &Path) -> Result<Vec<ParityPair>, String> {
    let path = dir.join(format!("BENCH_{name}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let Some(Json::Arr(rows)) = doc.get("rows") else {
        return Err(format!("{}: no rows array", path.display()));
    };
    let by_key: BTreeMap<String, &Json> = rows.iter().map(|r| (row_key(r), r)).collect();
    let mut pairs = Vec::new();
    for row in rows {
        let Some((key, boundary)) = dirichlet_sibling(row) else {
            continue;
        };
        let Some(sibling) = by_key.get(&key) else {
            continue;
        };
        if let Some(ratio) = row_ratio(sibling, row) {
            pairs.push(ParityPair {
                key,
                boundary,
                ratio,
            });
        }
    }
    Ok(pairs)
}

// ---------------------------------------------------------------------------
// Tessellated transpose-layout parity
// ---------------------------------------------------------------------------

/// A `…+tess(tl2)` scaling row paired with the `…+tess` (MultiLoad)
/// row sharing the same tile geometry and every other identity field —
/// both from the **same** snapshot, like [`boundary_parity`].
#[derive(Debug)]
pub struct TessPair {
    /// Identity of the MultiLoad sibling row.
    pub key: String,
    /// Wall-time ratio tl2 / MultiLoad (> 1 means the staged
    /// transpose-layout schedule trails the natural-layout one).
    pub ratio: f64,
}

/// The identity the `…+tess` MultiLoad sibling of `row` would have —
/// `None` unless the row's workload ends in `+tess(tl2)`. An f32 `(tl2)`
/// row keeps its `dtype` field, so it only pairs with an f32 MultiLoad
/// sibling (none today: such rows are skipped, not compared cross-dtype).
fn tess_sibling(row: &Json) -> Option<String> {
    let Json::Obj(fields) = row else { return None };
    let Some(Json::Str(w)) = row.get("workload") else {
        return None;
    };
    let base = w.strip_suffix("+tess(tl2)")?;
    let sibling = format!("{base}+tess");
    let rest: Vec<(String, Json)> = fields
        .iter()
        .map(|(k, v)| {
            if k == "workload" {
                (k.clone(), Json::Str(sibling.clone()))
            } else {
                (k.clone(), v.clone())
            }
        })
        .collect();
    Some(row_key(&Json::Obj(rest)))
}

/// Pair every `…+tess(tl2)` row of `BENCH_<name>.json` under `dir` with
/// the `…+tess` MultiLoad row sharing its remaining identity and return
/// the wall-time ratios. The tile-resident staging path owes MultiLoad
/// the same tessellated schedule within a small factor; rows without a
/// sibling (e.g. the f32 family) are skipped.
pub fn tess_parity(name: &str, dir: &Path) -> Result<Vec<TessPair>, String> {
    let path = dir.join(format!("BENCH_{name}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let Some(Json::Arr(rows)) = doc.get("rows") else {
        return Err(format!("{}: no rows array", path.display()));
    };
    let by_key: BTreeMap<String, &Json> = rows.iter().map(|r| (row_key(r), r)).collect();
    let mut pairs = Vec::new();
    for row in rows {
        let Some(key) = tess_sibling(row) else {
            continue;
        };
        let Some(sibling) = by_key.get(&key) else {
            continue;
        };
        if let Some(ratio) = row_ratio(sibling, row) {
            pairs.push(TessPair { key, ratio });
        }
    }
    Ok(pairs)
}

// ---------------------------------------------------------------------------
// Dtype speedup
// ---------------------------------------------------------------------------

/// An f32 row paired with the f64 row sharing every other identity field
/// — both from the **same** snapshot, like [`boundary_parity`], so the
/// speedup is within one host and one build.
#[derive(Debug)]
pub struct DtypePair {
    /// Identity of the f64 sibling row.
    pub key: String,
    /// Dtype label of the narrow row (today always `f32`).
    pub dtype: String,
    /// Wall-time speedup f64 / f32 (> 1 means the narrow element type
    /// is faster, as twice the lane width should be).
    pub speedup: f64,
}

/// The identity the f64 sibling of `row` would have, plus the dtype
/// label — `None` when `row` carries no explicit `dtype` field (f64
/// rows never do).
fn f64_sibling(row: &Json) -> Option<(String, String)> {
    let Json::Obj(fields) = row else { return None };
    let Some(Json::Str(d)) = row.get("dtype") else {
        return None;
    };
    let rest: Vec<(String, Json)> = fields
        .iter()
        .filter(|(k, _)| k != "dtype")
        .cloned()
        .collect();
    Some((row_key(&Json::Obj(rest)), d.clone()))
}

/// Pair every `dtype`-carrying row of `BENCH_<name>.json` under `dir`
/// with its f64 sibling (sharing every identity field but `dtype`) and
/// return the wall-time speedups, plus the snapshot's `best_isa` (the
/// check only owes a speedup when a SIMD ISA is present — portable
/// scalar f32 merely halves the memory traffic). Rows without a sibling
/// are skipped.
pub fn dtype_speedups(name: &str, dir: &Path) -> Result<(Vec<DtypePair>, String), String> {
    let path = dir.join(format!("BENCH_{name}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let best_isa = fingerprint(&doc).0;
    let Some(Json::Arr(rows)) = doc.get("rows") else {
        return Err(format!("{}: no rows array", path.display()));
    };
    let by_key: BTreeMap<String, &Json> = rows.iter().map(|r| (row_key(r), r)).collect();
    let mut pairs = Vec::new();
    for row in rows {
        let Some((key, dtype)) = f64_sibling(row) else {
            continue;
        };
        let Some(sibling) = by_key.get(&key) else {
            continue;
        };
        // row_ratio is current/baseline; with (sibling, row) = (f64,
        // f32) that is f32/f64 wall time — invert for a speedup.
        if let Some(ratio) = row_ratio(sibling, row) {
            if ratio > 0.0 {
                pairs.push(DtypePair {
                    key,
                    dtype,
                    speedup: 1.0 / ratio,
                });
            }
        }
    }
    Ok((pairs, best_isa))
}

/// Copy the gate set's current snapshots over the committed baseline.
pub fn rebaseline(names: &[&str], baseline: &Path, current: &Path) -> Result<Vec<PathBuf>, String> {
    std::fs::create_dir_all(baseline).map_err(|e| e.to_string())?;
    let mut written = Vec::new();
    for name in names {
        let file = format!("BENCH_{name}.json");
        let from = current.join(&file);
        let to = baseline.join(&file);
        std::fs::copy(&from, &to)
            .map_err(|e| format!("copy {} -> {}: {e}", from.display(), to.display()))?;
        written.push(to);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_save_json_output() {
        let rows = vec![
            vec![
                ("n", crate::save::Value::from(1000usize)),
                ("variant", crate::save::Value::from("session")),
                ("seconds", crate::save::Value::from(0.25)),
            ],
            vec![
                ("n", crate::save::Value::from(2000usize)),
                ("variant", crate::save::Value::from("na\"ïve")),
                ("seconds", crate::save::Value::from(0.5)),
            ],
        ];
        let dir = std::env::temp_dir();
        let path = crate::save::write_json(&dir, "gate_unit", &rows).unwrap();
        let doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let Some(Json::Arr(parsed)) = doc.get("rows") else {
            panic!("no rows");
        };
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].get("seconds").unwrap().as_f64(), Some(0.25));
        assert_eq!(
            parsed[1].get("variant"),
            Some(&Json::Str("na\"ïve".to_string()))
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let doc = parse(r#"{"a": [1, -2.5e1, "x\ty", null, true], "b": {}}"#).unwrap();
        let Some(Json::Arr(a)) = doc.get("a") else {
            panic!()
        };
        assert_eq!(a[1], Json::Num(-25.0));
        assert_eq!(a[2], Json::Str("x\ty".into()));
        assert_eq!(a[3], Json::Null);
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} garbage").is_err());
    }

    #[test]
    fn geomean_and_matching() {
        assert!((geomean(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);

        let dir = std::env::temp_dir().join(format!("gate_test_{}", std::process::id()));
        let basedir = dir.join("base");
        let curdir = dir.join("cur");
        std::fs::create_dir_all(&basedir).unwrap();
        std::fs::create_dir_all(&curdir).unwrap();
        let mk = |secs: f64, extra_row: bool| {
            let mut rows = vec![vec![
                ("n", crate::save::Value::from(100usize)),
                ("variant", crate::save::Value::from("a")),
                ("seconds", crate::save::Value::from(secs)),
            ]];
            if extra_row {
                rows.push(vec![
                    ("n", crate::save::Value::from(999usize)),
                    ("variant", crate::save::Value::from("only-one-side")),
                    ("seconds", crate::save::Value::from(1.0)),
                ]);
            }
            rows
        };
        crate::save::write_json(&basedir, "t", &mk(1.0, false)).unwrap();
        crate::save::write_json(&curdir, "t", &mk(1.2, true)).unwrap();
        let diff = diff_file("t", &basedir, &curdir).unwrap();
        assert_eq!(diff.ratios.len(), 1);
        assert!((diff.geomean() - 1.2).abs() < 1e-9, "{}", diff.geomean());
        // The extra current-only row is informational, not missing.
        assert_eq!((diff.new_rows, diff.missing_rows), (1, 0));

        // Swap the directions: the row is now absent from the current
        // run instead.
        let diff = diff_file("t", &curdir, &basedir).unwrap();
        assert_eq!((diff.new_rows, diff.missing_rows), (0, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn host_fingerprint_mismatch_is_flagged() {
        let dir = std::env::temp_dir().join(format!("gate_fp_{}", std::process::id()));
        let basedir = dir.join("base");
        let curdir = dir.join("cur");
        std::fs::create_dir_all(&basedir).unwrap();
        std::fs::create_dir_all(&curdir).unwrap();
        let rows = vec![vec![
            ("n", crate::save::Value::from(1usize)),
            ("seconds", crate::save::Value::from(1.0)),
        ]];
        crate::save::write_json(&basedir, "fp", &rows).unwrap();
        crate::save::write_json(&curdir, "fp", &rows).unwrap();
        assert!(diff_file("fp", &basedir, &curdir)
            .unwrap()
            .host_mismatch
            .is_none());
        // Doctor the baseline to look like a different host class.
        let p = basedir.join("BENCH_fp.json");
        let doctored = std::fs::read_to_string(&p)
            .unwrap()
            .replace("\"host_threads\": ", "\"host_threads\": 9");
        std::fs::write(&p, doctored).unwrap();
        let diff = diff_file("fp", &basedir, &curdir).unwrap();
        assert!(diff.host_mismatch.is_some());
        assert_eq!(diff.ratios.len(), 1, "rows still compared for reporting");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn boundary_parity_pairs_both_row_shapes() {
        let dir = std::env::temp_dir().join(format!("gate_parity_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rows = vec![
            // plan_reuse shape: boundary is its own field.
            vec![
                ("n", crate::save::Value::from(100usize)),
                ("variant", crate::save::Value::from("session")),
                ("seconds", crate::save::Value::from(1.0)),
            ],
            vec![
                ("n", crate::save::Value::from(100usize)),
                ("variant", crate::save::Value::from("session")),
                ("boundary", crate::save::Value::from("periodic")),
                ("seconds", crate::save::Value::from(1.05)),
            ],
            vec![
                ("n", crate::save::Value::from(100usize)),
                ("variant", crate::save::Value::from("session")),
                ("boundary", crate::save::Value::from("reflect")),
                ("seconds", crate::save::Value::from(1.5)),
            ],
            // A boundary row with no Dirichlet sibling (different n) is
            // skipped, not an error.
            vec![
                ("n", crate::save::Value::from(999usize)),
                ("variant", crate::save::Value::from("session")),
                ("boundary", crate::save::Value::from("periodic")),
                ("seconds", crate::save::Value::from(9.9)),
            ],
            // scaling-shaped workload rows are not paired (k = 1 methods
            // pay the per-step refresh by design).
            vec![
                ("workload", crate::save::Value::from("2d5p")),
                ("threads", crate::save::Value::from("2")),
                ("seconds", crate::save::Value::from(2.0)),
            ],
            vec![
                ("workload", crate::save::Value::from("2d5p@periodic")),
                ("threads", crate::save::Value::from("2")),
                ("seconds", crate::save::Value::from(4.0)),
            ],
        ];
        crate::save::write_json(&dir, "parity", &rows).unwrap();
        let mut pairs = boundary_parity("parity", &dir).unwrap();
        pairs.sort_by(|a, b| a.ratio.total_cmp(&b.ratio));
        let got: Vec<(&str, f64)> = pairs
            .iter()
            .map(|p| (p.boundary.as_str(), p.ratio))
            .collect();
        assert_eq!(pairs.len(), 2, "{pairs:?}");
        assert_eq!(got[0].0, "periodic");
        assert!((got[0].1 - 1.05).abs() < 1e-12);
        assert_eq!(got[1].0, "reflect");
        assert!((got[1].1 - 1.5).abs() < 1e-12);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tess_parity_pairs_tl2_rows_with_multiload_siblings() {
        let dir = std::env::temp_dir().join(format!("gate_tess_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rows = vec![
            vec![
                ("workload", crate::save::Value::from("2d5p+tess")),
                ("threads", crate::save::Value::from("2")),
                ("seconds", crate::save::Value::from(1.0)),
            ],
            vec![
                ("workload", crate::save::Value::from("2d5p+tess(tl2)")),
                ("threads", crate::save::Value::from("2")),
                ("seconds", crate::save::Value::from(2.0)),
            ],
            // An f32 (tl2) row keeps its dtype field: no f32 MultiLoad
            // sibling exists, so it is skipped, not paired cross-dtype.
            vec![
                ("workload", crate::save::Value::from("2d5p+tess(tl2)")),
                ("threads", crate::save::Value::from("2")),
                ("dtype", crate::save::Value::from("f32")),
                ("seconds", crate::save::Value::from(0.9)),
            ],
            // A (tl2) row at a thread count the sibling never ran is
            // skipped, not an error.
            vec![
                ("workload", crate::save::Value::from("2d5p+tess(tl2)")),
                ("threads", crate::save::Value::from("7")),
                ("seconds", crate::save::Value::from(9.9)),
            ],
        ];
        crate::save::write_json(&dir, "tess", &rows).unwrap();
        let pairs = tess_parity("tess", &dir).unwrap();
        assert_eq!(pairs.len(), 1, "{pairs:?}");
        assert!((pairs[0].ratio - 2.0).abs() < 1e-12, "{}", pairs[0].ratio);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dtype_speedups_pair_f32_rows_with_f64_siblings() {
        let dir = std::env::temp_dir().join(format!("gate_dtype_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rows = vec![
            vec![
                ("n", crate::save::Value::from(100usize)),
                ("variant", crate::save::Value::from("session")),
                ("seconds", crate::save::Value::from(2.0)),
            ],
            vec![
                ("n", crate::save::Value::from(100usize)),
                ("variant", crate::save::Value::from("session")),
                ("dtype", crate::save::Value::from("f32")),
                ("seconds", crate::save::Value::from(1.0)),
            ],
            // An f32 row with no f64 sibling is skipped, not an error.
            vec![
                ("n", crate::save::Value::from(999usize)),
                ("variant", crate::save::Value::from("session")),
                ("dtype", crate::save::Value::from("f32")),
                ("seconds", crate::save::Value::from(1.0)),
            ],
            // A boundary row must not pair as a dtype sibling.
            vec![
                ("n", crate::save::Value::from(100usize)),
                ("variant", crate::save::Value::from("session")),
                ("boundary", crate::save::Value::from("periodic")),
                ("seconds", crate::save::Value::from(2.1)),
            ],
        ];
        crate::save::write_json(&dir, "dtype", &rows).unwrap();
        let (pairs, isa) = dtype_speedups("dtype", &dir).unwrap();
        assert!(!isa.is_empty());
        assert_eq!(pairs.len(), 1, "{pairs:?}");
        assert_eq!(pairs[0].dtype, "f32");
        assert!(
            (pairs[0].speedup - 2.0).abs() < 1e-12,
            "{}",
            pairs[0].speedup
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn host_threads_is_not_identity() {
        // Snapshots from hosts with different core counts must still
        // match rows (host_threads is a metric-side field).
        let row = Json::Obj(vec![
            ("n".into(), Json::Num(10.0)),
            ("host_threads".into(), Json::Num(8.0)),
        ]);
        let row2 = Json::Obj(vec![
            ("n".into(), Json::Num(10.0)),
            ("host_threads".into(), Json::Num(4.0)),
        ]);
        assert_eq!(row_key(&row), row_key(&row2));
    }
}
