//! Benchmark-result persistence: `--save-json` support for the figure and
//! table binaries.
//!
//! Every bin accepts `--save-json` (optionally `--save-json=DIR`); when
//! present, the measured rows are written as `BENCH_<name>.json` so the
//! performance trajectory can be tracked across commits without parsing
//! stdout. Bare `--save-json` writes into the **workspace root** (resolved
//! from this crate's manifest at compile time), not the process CWD — CI
//! globs `BENCH_*.json` at the root, and a bin launched from a different
//! working directory used to drop its snapshot where the glob never
//! looked. The format is deliberately tiny and dependency-free:
//!
//! ```json
//! {
//!   "name": "fig7",
//!   "host_threads": 8,
//!   "best_isa": "avx512",
//!   "rows": [ { "n": 1000, "method": "Our2", "gflops": 12.3 }, ... ]
//! }
//! ```

use std::io::Write as _;
use std::path::PathBuf;

/// One JSON scalar value.
#[derive(Clone, Debug)]
pub enum Value {
    /// A float, serialized with Rust's shortest round-trip formatting
    /// (full precision at any magnitude; valid JSON).
    Num(f64),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped per the JSON grammar on output).
    Str(String),
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl Value {
    fn render(&self) -> String {
        match self {
            Value::Num(v) if v.is_finite() => format!("{v}"),
            Value::Num(_) => "null".to_string(),
            Value::Int(v) => v.to_string(),
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => json_string(s),
        }
    }
}

/// Quote and escape a string per the JSON grammar (RFC 8259).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A measured row: field name → value.
pub type Row = Vec<(&'static str, Value)>;

/// The workspace root (two levels above this crate's manifest). This is
/// where bare `--save-json` writes, independent of the process CWD.
pub fn workspace_root() -> PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .to_path_buf()
}

/// Directory requested via `--save-json[=DIR]` on the command line, if
/// any. Bare `--save-json` resolves to [`workspace_root`].
pub fn requested_dir() -> Option<PathBuf> {
    for arg in std::env::args().skip(1) {
        if arg == "--save-json" {
            return Some(workspace_root());
        }
        if let Some(dir) = arg.strip_prefix("--save-json=") {
            return Some(PathBuf::from(dir));
        }
    }
    None
}

/// Write `BENCH_<name>.json` into `dir`. Returns the path written.
pub fn write_json(dir: &std::path::Path, name: &str, rows: &[Row]) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut out = Vec::new();
    writeln!(out, "{{")?;
    writeln!(out, "  \"name\": {},", json_string(name))?;
    writeln!(out, "  \"host_threads\": {},", crate::max_threads())?;
    writeln!(
        out,
        "  \"best_isa\": \"{}\",",
        stencil_simd::Isa::detect_best()
    )?;
    writeln!(out, "  \"rows\": [")?;
    for (i, row) in rows.iter().enumerate() {
        let fields: Vec<String> = row
            .iter()
            .map(|(k, v)| format!("{}: {}", json_string(k), v.render()))
            .collect();
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(out, "    {{ {} }}{comma}", fields.join(", "))?;
    }
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Convenience used by every bin: if `--save-json` was passed, persist
/// the rows and print where they went.
pub fn maybe_save(name: &str, rows: &[Row]) {
    if let Some(dir) = requested_dir() {
        match write_json(&dir, name, rows) {
            Ok(path) => println!("\nsaved {} rows to {}", rows.len(), path.display()),
            Err(e) => eprintln!("failed to save BENCH_{name}.json: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_sane() {
        let rows = vec![
            vec![
                ("n", Value::from(1000usize)),
                ("m", Value::from("Our2")),
                ("g", 1.5.into()),
            ],
            vec![
                ("n", Value::from(2000usize)),
                ("m", Value::from("DLT")),
                ("g", 0.5.into()),
            ],
        ];
        let dir = std::env::temp_dir();
        let path = write_json(&dir, "unit_test", &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"name\": \"unit_test\""));
        assert!(text.contains("\"m\": \"Our2\""));
        assert!(text.contains("\"g\": 1.5"));
        assert!(!text.contains("},\n  ]"), "no trailing comma:\n{text}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn workspace_root_is_cwd_independent() {
        // Compile-time anchored: must be the directory holding the
        // workspace manifest and the crates/ tree, whatever the CWD is.
        let root = workspace_root();
        assert!(root.join("Cargo.toml").is_file(), "{root:?}");
        assert!(root.join("crates").join("bench").is_dir(), "{root:?}");
    }

    #[test]
    fn strings_escape_per_json_grammar() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        // Non-ASCII passes through verbatim (JSON allows raw UTF-8).
        assert_eq!(json_string("naïve µs"), "\"naïve µs\"");
    }
}
