//! Quickstart: diffuse a heat spike with every vectorization scheme and
//! check they agree, then time the paper's scheme against the baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;

use stencil_lab::prelude::*;

fn main() {
    let isa = Isa::detect_best();
    println!("ISA: {isa} ({} f64 lanes)\n", isa.lanes());

    // A 1D rod with a hot spike in the middle; ends held at 0.
    let n = 1 << 20;
    let steps = 200;
    let stencil = S1d3p::heat();
    let init = Grid1::from_fn(n, 0.0, |i| if i == n / 2 { 1000.0 } else { 0.0 });

    let mut reference = init.clone();
    run1_star1(Method::Scalar, isa, &mut reference, &stencil, steps);

    println!("{:<14} {:>10} {:>14}", "method", "time", "max|Δ| vs scalar");
    for method in Method::ALL {
        let mut g = init.clone();
        let t0 = Instant::now();
        run1_star1(method, isa, &mut g, &stencil, steps);
        let dt = t0.elapsed();
        let diff = stencil_lab::core::verify::max_abs_diff1(&g, &reference);
        println!("{:<14} {:>8.2?} {:>14.1e}", method.name(), dt, diff);
        assert_eq!(diff, 0.0, "all schemes are bit-identical");
    }

    // The same physics, temporally tiled across all cores.
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let mut g = init.clone();
    let t0 = Instant::now();
    tessellate1_star1(Method::TransLayout2, isa, &mut g, &stencil, steps, 2000, 100, threads);
    println!(
        "\ntessellate + translayout2 on {threads} threads: {:.2?} (still exact: {:e})",
        t0.elapsed(),
        stencil_lab::core::verify::max_abs_diff1(&g, &reference)
    );

    // Physics sanity: total heat is conserved away from the boundaries.
    let total: f64 = g.interior().iter().sum();
    println!("total heat after {steps} steps: {total:.3} (injected 1000)");
}
