//! Quickstart: diffuse a heat spike with every vectorization scheme and
//! check they agree, then time the paper's scheme against the baselines —
//! all through the **erased** engine: the stencil comes from a string
//! (as it would from a CLI flag or a service request), compiles through
//! [`Plan::stencil`] into a [`DynPlan`], and still runs the same
//! monomorphized kernels as the typed API.
//!
//! ```sh
//! cargo run --release --example quickstart [-- --smoke]
//! ```

use std::time::Instant;

use stencil_lab::prelude::*;

/// CI smoke mode: shrink the run to seconds (`--smoke` anywhere in args).
fn smoke() -> bool {
    std::env::args().skip(1).any(|a| a == "--smoke")
}

fn main() {
    let isa = Isa::detect_best();
    println!("ISA: {isa} ({} f64 lanes)\n", isa.lanes());

    // A 1D rod with a hot spike in the middle; ends held at 0. The
    // stencil is picked "at runtime" — parse a paper name into a spec.
    let (n, steps) = if smoke() {
        (1 << 16, 40)
    } else {
        (1 << 20, 200)
    };
    let spec: StencilSpec = "1d3p".parse().expect("paper stencil name");
    let init = Grid1::from_fn(n, 0.0, |i| if i == n / 2 { 1000.0 } else { 0.0 });

    let mut reference = init.clone();
    Plan::new(Shape::d1(n))
        .method(Method::Scalar)
        .isa(isa)
        .stencil(&spec)
        .expect("valid plan")
        .run(&mut reference, steps);

    println!("{:<14} {:>10} {:>14}", "method", "time", "max|Δ| vs scalar");
    for method in Method::ALL {
        let mut plan = Plan::new(Shape::d1(n))
            .method(method)
            .isa(isa)
            .stencil(&spec)
            .expect("valid plan");
        let mut g = init.clone();
        let t0 = Instant::now();
        plan.run(&mut g, steps);
        let dt = t0.elapsed();
        let diff = stencil_lab::core::verify::max_abs_diff1(&g, &reference);
        println!("{:<14} {:>8.2?} {:>14.1e}", method.name(), dt, diff);
        assert_eq!(diff, 0.0, "all schemes are bit-identical");
    }

    // The same physics, temporally tiled across all cores.
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let mut plan = Plan::new(Shape::d1(n))
        .method(Method::TransLayout2)
        .isa(isa)
        .tiling(Tiling::Tessellate {
            w: [2000, 0, 0],
            h: 100,
            threads,
        })
        .stencil(&spec)
        .expect("valid tiled plan");
    let mut g = init.clone();
    let t0 = Instant::now();
    plan.run(&mut g, steps);
    println!(
        "\ntessellate + translayout2 on {threads} threads: {:.2?} (still exact: {:e})",
        t0.elapsed(),
        stencil_lab::core::verify::max_abs_diff1(&g, &reference)
    );

    // Repeated stepping through a layout-resident session: the transpose
    // round-trip and scratch allocation are paid once, not per call.
    let mut plan = Plan::new(Shape::d1(n))
        .method(Method::TransLayout2)
        .isa(isa)
        .stencil(&spec)
        .expect("valid plan");
    let mut g = init.clone();
    let t0 = Instant::now();
    {
        let mut sess = plan.session(&mut g);
        for _ in 0..steps / 20 {
            sess.run(20);
        }
    }
    println!(
        "session ({} × 20-step calls): {:.2?} (still exact: {:e})",
        steps / 20,
        t0.elapsed(),
        stencil_lab::core::verify::max_abs_diff1(&g, &reference)
    );

    // The fully dynamic container: shape + numbers in, no generic grid
    // type named, same bits out.
    let shape = Shape::d1(n);
    let mut any = AnyGrid::from_vec(shape, spec.radius(), 0.0, init.interior().to_vec())
        .expect("data covers the shape");
    Plan::new(shape)
        .method(Method::TransLayout2)
        .isa(isa)
        .stencil(&spec)
        .expect("valid plan")
        .run(&mut any, steps);
    let diff =
        stencil_lab::core::verify::max_abs_diff1(any.as_grid1().expect("1D shape"), &reference);
    println!("AnyGrid::from_vec path: still exact: {diff:e}");
    assert_eq!(diff, 0.0);

    // Physics sanity: total heat is conserved away from the boundaries.
    let total: f64 = g.interior().iter().sum();
    println!("total heat after {steps} steps: {total:.3} (injected 1000)");

    // The same rod bent into a ring: a periodic boundary (spec name
    // "1d3p@periodic") turns the open rod into a closed loop — heat
    // wraps instead of draining into the fixed-value halos, and every
    // scheme still agrees bit-for-bit with the scalar reference.
    let ring: StencilSpec = "1d3p@periodic".parse().expect("stencil@boundary name");
    let mut reference = init.clone();
    Plan::new(Shape::d1(n))
        .method(Method::Scalar)
        .isa(isa)
        .stencil(&ring)
        .expect("valid plan")
        .run(&mut reference, steps);
    for method in Method::ALL {
        let mut plan = Plan::new(Shape::d1(n))
            .method(method)
            .isa(isa)
            .stencil(&ring)
            .expect("valid plan");
        let mut g = init.clone();
        plan.run(&mut g, steps);
        let diff = stencil_lab::core::verify::max_abs_diff1(&g, &reference);
        assert_eq!(diff, 0.0, "{method} under periodic");
    }
    let ring_total: f64 = reference.interior().iter().sum();
    println!(
        "periodic ring, {steps} steps: every scheme exact; total heat {ring_total:.3} \
         (conserved — nothing drains through a wrapped boundary)"
    );
}
