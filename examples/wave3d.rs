//! 3D pulse propagation with the 7-point star stencil — a seismic-style
//! volume workload run through the full stack: transpose layout, k = 2
//! unroll-and-jam, tessellate tiling, all cores, one reused type-erased
//! plan ([`Plan::stencil`] over a runtime [`StencilSpec`]).
//! Prints an ASCII slice of the diffusing wavefront.
//!
//! ```sh
//! cargo run --release --example wave3d [-- --smoke]
//! ```

use std::time::Instant;

use stencil_lab::prelude::*;

/// CI smoke mode: shrink the run to seconds (`--smoke` anywhere in args).
fn smoke() -> bool {
    std::env::args().skip(1).any(|a| a == "--smoke")
}

fn main() {
    let isa = Isa::detect_best();
    let (nx, ny, nz, steps) = if smoke() {
        (64usize, 64usize, 64usize, 12)
    } else {
        (128, 128, 128, 40)
    };
    let spec: StencilSpec = "3d7p".parse().expect("paper stencil name");
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);

    // A pulse off-center in the volume.
    let (px, py, pz) = (nx as f64 * 0.3, ny as f64 * 0.5, nz as f64 * 0.5);
    let init = Grid3::from_fn(nx, ny, nz, 1, 0.0, |z, y, x| {
        let d2 = (x as f64 - px).powi(2) + (y as f64 - py).powi(2) + (z as f64 - pz).powi(2);
        if d2 < 36.0 {
            500.0
        } else {
            0.0
        }
    });

    println!("{nx}x{ny}x{nz} volume, {steps} steps, {threads} threads ({isa})");
    let mut plan = Plan::new(Shape::d3(nx, ny, nz))
        .method(Method::TransLayout2)
        .isa(isa)
        .tiling(Tiling::Tessellate {
            w: [64, 24, 24],
            h: 10,
            threads,
        })
        .stencil(&spec)
        .expect("valid tiled plan");
    let mut g = init.clone();
    let t0 = Instant::now();
    plan.run(&mut g, steps);
    let tiled = t0.elapsed();

    // Untiled comparison on the new domain-decomposed parallel executor
    // (z-bands across the same core count, barrier per step).
    let mut reference = init.clone();
    let t0 = Instant::now();
    Plan::new(Shape::d3(nx, ny, nz))
        .method(Method::MultiLoad)
        .isa(isa)
        .parallelism(Parallelism::Threads(threads))
        .stencil(&spec)
        .expect("valid plan")
        .run(&mut reference, steps);
    let plain = t0.elapsed();

    let diff = stencil_lab::core::verify::max_abs_diff3(&g, &reference);
    println!(
        "tiled+translayout2: {tiled:.2?}   untiled multiload ({threads} threads): {plain:.2?}   \
         |Δ| = {diff:e}"
    );
    assert_eq!(diff, 0.0);

    // ASCII view of the mid-volume z slice.
    let zmid = (nz / 2) as isize;
    println!("\nz={zmid} slice after {steps} steps:");
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let peak = (0..ny)
        .flat_map(|y| (0..nx).map(move |x| (y, x)))
        .map(|(y, x)| g.get(zmid, y as isize, x as isize))
        .fold(f64::MIN, f64::max);
    for y in (0..ny).step_by(4) {
        let line: String = (0..nx)
            .step_by(2)
            .map(|x| {
                let v = g.get(zmid, y as isize, x as isize) / peak;
                shades[((v.clamp(0.0, 1.0)) * 9.0) as usize]
            })
            .collect();
        println!("{line}");
    }
    let total: f64 = (0..nz as isize)
        .flat_map(|z| (0..ny as isize).map(move |y| (z, y)))
        .map(|(z, y)| (0..nx as isize).map(|x| g.get(z, y, x)).sum::<f64>())
        .sum();
    println!("\ntotal field: {total:.1}");
}
