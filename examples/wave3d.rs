//! 3D pulse propagation on a **periodic** volume with the 7-point star
//! stencil — the torus setting the stencil-framework literature
//! evaluates on: the pulse diffuses off one face and wraps back in on
//! the opposite one. Runs through the full stack: transpose layout, the
//! domain-decomposed parallel executor (z-bands, per-step halo refresh
//! at the barrier), one reused type-erased plan compiled from the spec
//! name `"3d7p@periodic"`. Prints an ASCII slice of the wrapping
//! wavefront.
//!
//! ```sh
//! cargo run --release --example wave3d [-- --smoke]
//! ```

use std::time::Instant;

use stencil_lab::prelude::*;

/// CI smoke mode: shrink the run to seconds (`--smoke` anywhere in args).
fn smoke() -> bool {
    std::env::args().skip(1).any(|a| a == "--smoke")
}

fn main() {
    let isa = Isa::detect_best();
    let (nx, ny, nz, steps) = if smoke() {
        (64usize, 64usize, 64usize, 12)
    } else {
        (128, 128, 128, 40)
    };
    let spec: StencilSpec = "3d7p@periodic".parse().expect("paper stencil name");
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);

    // A pulse deliberately near the x = 0 face: under periodic wrap it
    // bleeds back in from x = nx − 1, which Dirichlet walls would eat.
    let (px, py, pz) = (nx as f64 * 0.06, ny as f64 * 0.5, nz as f64 * 0.5);
    let shape = Shape::d3(nx, ny, nz);
    let init = AnyGrid::from_fn_spec(shape, &spec, |z, y, x| {
        let dx = (x as f64 - px).abs().min(nx as f64 - (x as f64 - px).abs());
        let d2 = dx.powi(2) + (y as f64 - py).powi(2) + (z as f64 - pz).powi(2);
        if d2 < 36.0 {
            500.0
        } else {
            0.0
        }
    })
    .expect("shape hosts the spec");

    println!("{nx}x{ny}x{nz} periodic volume, {steps} steps, {threads} threads ({isa})");
    let mut plan = Plan::new(shape)
        .method(Method::TransLayout2)
        .isa(isa)
        .parallelism(Parallelism::Threads(threads))
        .stencil(&spec)
        .expect("valid plan");
    let mut g = init.clone();
    let t0 = Instant::now();
    plan.run(&mut g, steps);
    let tl2 = t0.elapsed();

    // Same physics on the auto-vectorized baseline, same executor.
    let mut reference = init.clone();
    let t0 = Instant::now();
    Plan::new(shape)
        .method(Method::MultiLoad)
        .isa(isa)
        .parallelism(Parallelism::Threads(threads))
        .stencil(&spec)
        .expect("valid plan")
        .run(&mut reference, steps);
    let plain = t0.elapsed();

    let diff = stencil_lab::core::verify::max_abs_diff_any(&g, &reference);
    println!(
        "translayout2: {tl2:.2?}   multiload ({threads} threads): {plain:.2?}   |Δ| = {diff:e}"
    );
    assert_eq!(diff, 0.0);

    // ASCII view of the mid-volume z slice: the wavefront wraps across
    // the x faces instead of dying at them.
    let g3 = g.as_grid3().expect("3D shape");
    let zmid = (nz / 2) as isize;
    println!("\nz={zmid} slice after {steps} steps (note the wrap across x):");
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let peak = (0..ny)
        .flat_map(|y| (0..nx).map(move |x| (y, x)))
        .map(|(y, x)| g3.get(zmid, y as isize, x as isize))
        .fold(f64::MIN, f64::max);
    for y in (0..ny).step_by(4) {
        let line: String = (0..nx)
            .step_by(2)
            .map(|x| {
                let v = g3.get(zmid, y as isize, x as isize) / peak;
                shades[((v.clamp(0.0, 1.0)) * 9.0) as usize]
            })
            .collect();
        println!("{line}");
    }

    // The torus has no boundary to lose field through: the total is
    // conserved to rounding.
    let injected: f64 = init.to_vec().iter().sum();
    let total: f64 = g.to_vec().iter().sum();
    println!("\ntotal field: {total:.1} (injected {injected:.1}; periodic wrap conserves it)");
    assert!((total - injected).abs() < 1e-6 * injected);
}
