//! Iterated 3×3 box blur (the 2D9P box stencil) on a synthetic test
//! pattern — the image-processing workload the paper's §2.2 calls out as
//! the case where DLT's transform overhead hurts (few time steps), which
//! the local transpose layout avoids. Each scheme runs through a reused
//! type-erased plan ([`Plan::stencil`] over a runtime [`StencilSpec`])
//! with **reflect** edges (`"2d9p@reflect"`) — the standard
//! edge-extension for image filtering, so the blur never bleeds a
//! constant border color into the frame.
//!
//! ```sh
//! cargo run --release --example blur2d [-- passes] [--smoke]
//! ```

use std::time::Instant;

use stencil_lab::prelude::*;

/// CI smoke mode: shrink the run to seconds (`--smoke` anywhere in args).
fn smoke() -> bool {
    std::env::args().skip(1).any(|a| a == "--smoke")
}

fn main() -> std::io::Result<()> {
    let isa = Isa::detect_best();
    let (nx, ny) = if smoke() {
        (320usize, 240usize)
    } else {
        (1024, 768)
    };
    let passes: usize = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(if smoke() { 3 } else { 6 });
    let blur: StencilSpec = "2d9p@reflect".parse().expect("paper stencil name");

    // Checkerboard + circles test pattern.
    let img = Grid2::from_fn(nx, ny, 1, 0.0, |y, x| {
        let checker = ((x / 64 + y / 64) % 2) as f64;
        let cx = (x as f64 - nx as f64 / 2.0) / 80.0;
        let cy = (y as f64 - ny as f64 / 2.0) / 80.0;
        let rings = (0.5 + 0.5 * ((cx * cx + cy * cy).sqrt() * 6.0).sin()).round();
        0.7 * checker + 0.3 * rings
    });

    println!("{nx}x{ny} image, {passes} blur passes, reflect edges ({isa})");
    println!("{:<14} {:>10}", "method", "time");
    let mut blurred = None;
    for method in [
        Method::Scalar,
        Method::MultiLoad,
        Method::Dlt,
        Method::TransLayout,
    ] {
        let mut plan = Plan::new(Shape::d2(nx, ny))
            .method(method)
            .isa(isa)
            .stencil(&blur)
            .expect("valid plan");
        let mut g = img.clone();
        let t0 = Instant::now();
        plan.run(&mut g, passes);
        println!("{:<14} {:>8.2?}", method.name(), t0.elapsed());
        if let Some(reference) = &blurred {
            assert_eq!(stencil_lab::core::verify::max_abs_diff2(&g, reference), 0.0);
        } else {
            blurred = Some(g);
        }
    }

    // Write before/after PGMs.
    let g = blurred.unwrap();
    for (name, grid) in [("blur2d_in.pgm", &img), ("blur2d_out.pgm", &g)] {
        let mut out = Vec::with_capacity(nx * ny + 64);
        use std::io::Write;
        writeln!(out, "P5\n{nx} {ny}\n255")?;
        for y in 0..ny {
            for &v in grid.row(y) {
                out.push((255.0 * v.clamp(0.0, 1.0)) as u8);
            }
        }
        std::fs::write(name, out)?;
        println!("wrote {name}");
    }
    Ok(())
}
