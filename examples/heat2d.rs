//! 2D heat diffusion: four hot sources on a cold plate, run with the
//! transpose-layout scheme under tessellate tiling on all cores via the
//! erased engine (a [`StencilSpec`] compiled by [`Plan::stencil`]),
//! rendered as a PGM heat map.
//!
//! ```sh
//! cargo run --release --example heat2d [-- out.pgm] [--smoke]
//! ```

use std::io::Write;

use stencil_lab::prelude::*;

/// CI smoke mode: shrink the run to seconds (`--smoke` anywhere in args).
fn smoke() -> bool {
    std::env::args().skip(1).any(|a| a == "--smoke")
}

fn main() -> std::io::Result<()> {
    let isa = Isa::detect_best();
    let (nx, ny, steps) = if smoke() {
        (256usize, 192usize, 60)
    } else {
        (768, 512, 400)
    };
    let spec: StencilSpec = "2d5p".parse().expect("paper stencil name");

    // Four gaussian-ish sources.
    let sources = [(150usize, 120usize), (600, 100), (380, 300), (200, 430)];
    let init = Grid2::from_fn(nx, ny, 1, 0.0, |y, x| {
        sources
            .iter()
            .map(|&(sx, sy)| {
                let d2 = (x as f64 - sx as f64).powi(2) + (y as f64 - sy as f64).powi(2);
                1000.0 * (-d2 / 400.0).exp()
            })
            .sum()
    });

    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let mut plan = Plan::new(Shape::d2(nx, ny))
        .method(Method::TransLayout2)
        .isa(isa)
        .tiling(Tiling::Tessellate {
            w: [192, 128, 0],
            h: 60,
            threads,
        })
        .stencil(&spec)
        .expect("valid tiled plan");
    let mut g = init.clone();
    let t0 = std::time::Instant::now();
    plan.run(&mut g, steps);
    println!(
        "{nx}x{ny} plate, {steps} steps on {threads} threads ({isa}): {:.2?}",
        t0.elapsed()
    );

    // Cross-check against the scalar reference (smaller step count would
    // do, but the full run is cheap enough).
    let mut reference = init.clone();
    Plan::new(Shape::d2(nx, ny))
        .method(Method::Scalar)
        .isa(isa)
        .stencil(&spec)
        .expect("valid plan")
        .run(&mut reference, steps);
    let diff = stencil_lab::core::verify::max_abs_diff2(&g, &reference);
    println!("max |Δ| vs scalar reference: {diff:e}");
    assert_eq!(diff, 0.0);

    // Render as PGM.
    let path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "heat2d.pgm".into());
    let peak = (0..ny)
        .flat_map(|y| g.row(y).iter().copied())
        .fold(f64::MIN, f64::max);
    let mut out = Vec::with_capacity(nx * ny + 64);
    writeln!(out, "P5\n{nx} {ny}\n255")?;
    for y in 0..ny {
        for &v in g.row(y) {
            out.push((255.0 * (v / peak).clamp(0.0, 1.0).sqrt()) as u8);
        }
    }
    std::fs::write(&path, out)?;
    println!("wrote {path}");
    Ok(())
}
