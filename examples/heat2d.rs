//! 2D heat diffusion on an **insulated plate**: four hot sources on a
//! cold plate with zero-flux ([`Boundary::Reflect`]) walls, so no heat
//! escapes — the total field is conserved while the sources smear out.
//! Runs with the transpose-layout scheme on all cores through the erased
//! engine (a [`StencilSpec`] parsed as `"2d5p@reflect"` and compiled by
//! [`Plan::stencil`]), rendered as a PGM heat map.
//!
//! ```sh
//! cargo run --release --example heat2d [-- out.pgm] [--smoke]
//! ```

use std::io::Write;

use stencil_lab::prelude::*;

/// CI smoke mode: shrink the run to seconds (`--smoke` anywhere in args).
fn smoke() -> bool {
    std::env::args().skip(1).any(|a| a == "--smoke")
}

fn main() -> std::io::Result<()> {
    let isa = Isa::detect_best();
    let (nx, ny, steps) = if smoke() {
        (256usize, 192usize, 60)
    } else {
        (768, 512, 400)
    };
    // The insulated-plate workload: reflect (zero-flux Neumann) walls.
    let spec: StencilSpec = "2d5p@reflect".parse().expect("paper stencil name");

    // Four gaussian-ish sources.
    let sources = [(150usize, 120usize), (600, 100), (380, 300), (200, 430)];
    let shape = Shape::d2(nx, ny);
    let init = AnyGrid::from_fn_spec(shape, &spec, |_, y, x| {
        sources
            .iter()
            .map(|&(sx, sy)| {
                let d2 = (x as f64 - sx as f64).powi(2) + (y as f64 - sy as f64).powi(2);
                1000.0 * (-d2 / 400.0).exp()
            })
            .sum()
    })
    .expect("shape hosts the spec");
    let injected: f64 = init.to_vec().iter().sum();

    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    // Refreshed boundaries run untiled (temporal tiling needs constant
    // halos), so the parallelism comes from the domain-decomposed
    // executor: y-bands across all cores, halo refresh at each barrier.
    let mut plan = Plan::new(shape)
        .method(Method::TransLayout2)
        .isa(isa)
        .parallelism(Parallelism::Threads(threads))
        .stencil(&spec)
        .expect("valid plan");
    let mut g = init.clone();
    let t0 = std::time::Instant::now();
    plan.run(&mut g, steps);
    println!(
        "{nx}x{ny} insulated plate, {steps} steps on {threads} threads ({isa}): {:.2?}",
        t0.elapsed()
    );

    // Cross-check against the scalar reference under the same boundary.
    let mut reference = init.clone();
    Plan::new(shape)
        .method(Method::Scalar)
        .isa(isa)
        .stencil(&spec)
        .expect("valid plan")
        .run(&mut reference, steps);
    let diff = stencil_lab::core::verify::max_abs_diff_any(&g, &reference);
    println!("max |Δ| vs scalar reference: {diff:e}");
    assert_eq!(diff, 0.0);

    // Zero-flux walls conserve the total heat — the physics the
    // Dirichlet halos could never express (they drain into the halo).
    let total: f64 = g.to_vec().iter().sum();
    println!("total heat: {total:.3} (injected {injected:.3}, insulated walls keep it)");
    assert!((total - injected).abs() < 1e-6 * injected);

    // Render as PGM.
    let path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "heat2d.pgm".into());
    let g2 = g.as_grid2().expect("2D shape");
    let peak = (0..ny)
        .flat_map(|y| g2.row(y).iter().copied())
        .fold(f64::MIN, f64::max);
    let mut out = Vec::with_capacity(nx * ny + 64);
    writeln!(out, "P5\n{nx} {ny}\n255")?;
    for y in 0..ny {
        for &v in g2.row(y) {
            out.push((255.0 * (v / peak).clamp(0.0, 1.0).sqrt()) as u8);
        }
    }
    std::fs::write(&path, out)?;
    println!("wrote {path}");
    Ok(())
}
