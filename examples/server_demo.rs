//! Service-layer demo: two tenants share one [`Server`], submitting a
//! mix of f32 and f64 jobs across 1D/2D/3D stencils. The plan cache
//! absorbs the repeat configurations, the weighted round-robin
//! scheduler gives `sim` three dispatch slots to `viz`'s one, and the
//! run-trace table at the end shows exactly what ran: resolved
//! method/ISA, cache hit or miss, wall time, and GF/s.
//!
//! ```sh
//! cargo run --release --example server_demo [-- --smoke]
//! ```

use std::sync::Arc;

use stencil_lab::prelude::*;
use stencil_lab::server::{CacheOutcome, JobSpec, Server};

/// CI smoke mode: shrink the run to seconds (`--smoke` anywhere in args).
fn smoke() -> bool {
    std::env::args().skip(1).any(|a| a == "--smoke")
}

fn main() {
    let isa = Isa::detect_best();
    println!("ISA: {isa} ({} f64 lanes)\n", isa.lanes());

    let scale = if smoke() { 1 } else { 4 };
    // Each tenant's workload: (spec name, shape, steps), repeated
    // `rounds` times — the repeats are what the plan cache eats.
    let sim_jobs: Vec<(&str, Shape, usize)> = vec![
        ("1d3p", Shape::d1(50_000 * scale), 20),
        ("2d5p@periodic", Shape::d2(200 * scale, 150), 10),
        ("3d7p@f32", Shape::d3(48, 40, 8 * scale), 6),
    ];
    let viz_jobs: Vec<(&str, Shape, usize)> = vec![
        ("2d9p@f32", Shape::d2(160 * scale, 120), 8),
        ("1d5p@reflect", Shape::d1(40_000 * scale), 16),
    ];
    let rounds = 4;

    let server = Arc::new(Server::with_defaults());
    server.set_weight("sim", 3);
    server.set_weight("viz", 1);

    // Two submission threads, one per tenant, running concurrently —
    // exactly the shape of a service with independent clients.
    let workers: Vec<_> = [("sim", sim_jobs), ("viz", viz_jobs)]
        .into_iter()
        .map(|(tenant, jobs)| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut checksum = 0.0f64;
                for _ in 0..rounds {
                    let handles: Vec<_> = jobs
                        .iter()
                        .map(|(name, shape, steps)| {
                            let spec: StencilSpec = name.parse().expect("paper stencil name");
                            let grid = AnyGrid::from_fn_spec(*shape, &spec, |z, y, x| {
                                ((x + 3 * y + 7 * z) % 11) as f64 * 0.1
                            })
                            .expect("spec-compatible grid");
                            server
                                .submit(JobSpec::new(tenant, spec, grid, *steps))
                                .expect("queue has room")
                        })
                        .collect();
                    for h in handles {
                        let out = h.wait().expect("job ran");
                        checksum += out.grid.to_vec().iter().sum::<f64>();
                    }
                }
                (tenant, checksum)
            })
        })
        .collect();
    for w in workers {
        let (tenant, checksum) = w.join().expect("worker thread");
        println!("tenant {tenant:<4} done, grid checksum {checksum:.6}");
    }

    let stats = server.cache_stats();
    println!(
        "\nplan cache: {} hits / {} misses ({:.0}% hit rate), {} resident, {} evicted",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate(),
        stats.len,
        stats.evictions,
    );

    println!(
        "\n{:>4} {:>4}  {:<6} {:<18} {:<12} {:<13} {:>5} {:>9} {:>8}",
        "seq", "job", "tenant", "spec", "shape", "method", "cache", "ms", "GF/s"
    );
    for t in server.traces() {
        println!(
            "{:>4} {:>4}  {:<6} {:<18} {:<12} {:<13} {:>5} {:>9.3} {:>8.2}",
            t.seq,
            t.job,
            t.tenant,
            t.spec,
            t.shape,
            t.method,
            t.cache.name(),
            t.seconds * 1e3,
            t.gflops,
        );
    }

    // Sanity for CI: after round one, every configuration is cached.
    let misses = server
        .traces()
        .iter()
        .filter(|t| t.cache == CacheOutcome::Miss)
        .count();
    assert_eq!(misses, 5, "one miss per distinct configuration");
    assert!(stats.hit_rate() >= 0.7, "cache should absorb the repeats");
    println!(
        "\nok: {} jobs, one compile per configuration",
        server.jobs_completed()
    );
}
