//! # stencil-lab
//!
//! Umbrella crate for the reproduction of *An Efficient Vectorization
//! Scheme for Stencil Computation* (Li, Yuan, Zhang, Yue, Cao, Lu —
//! IPDPS 2022).
//!
//! Re-exports the three layers:
//!
//! * [`simd`] — vector ISA abstraction, in-register transposes, assembles;
//! * [`core`] — grids, stencils, the transpose-layout scheme, all
//!   baseline vectorization methods, and the [`Plan`](core::exec::Plan)
//!   execution engine (including both temporal-tiling frameworks);
//! * [`tiling`] — legacy tessellate/split entry points (thin wrappers
//!   over `Plan`);
//! * [`server`] — the multi-tenant service layer: plan cache, fair
//!   job queue, and structured run traces over the erased plan API.
//!
//! ```
//! use stencil_lab::prelude::*;
//!
//! let mut plan = Plan::new(Shape::d1(1 << 14))
//!     .method(Method::TransLayout2)
//!     .isa(Isa::detect_best())
//!     .star1(S1d3p::heat())
//!     .unwrap();
//! let mut g = Grid1::from_fn(1 << 14, 0.0, |i| (i as f64 * 0.001).sin());
//! plan.run(&mut g, 64);
//! ```

pub use stencil_core as core;
pub use stencil_server as server;
pub use stencil_simd as simd;
pub use stencil_tiling as tiling;

/// Everything a typical user needs in scope — both the typed plan API
/// and the erased [`StencilSpec`](stencil_core::spec::StencilSpec) /
/// [`DynPlan`](stencil_core::exec::DynPlan) API.
pub mod prelude {
    pub use stencil_core::exec::{
        AnyGridMut, Boundary, DynPlan, DynSession, Parallelism, Plan, PlanError, Shape, Tiling,
    };
    pub use stencil_core::{
        run1_star1, run2_box, run2_star, run3_box, run3_star, run_spec, AnyGrid, Box2, Box3, Grid1,
        Grid2, Grid3, Method, S1d3p, S1d5p, S2d5p, S2d9p, S3d27p, S3d7p, SpecError, Star1, Star2,
        Star3, StencilShape, StencilSpec,
    };
    pub use stencil_simd::Isa;
    pub use stencil_tiling::{
        split1_star1, split2_star, split3_star, tessellate1_star1, tessellate2_box,
        tessellate2_star, tessellate3_box, tessellate3_star,
    };
}
