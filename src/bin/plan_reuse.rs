//! Plan-reuse microbenchmark — the measurement behind the plan refactor
//! and the erased-API acceptance gate: repeated stepping through (a) the
//! legacy free function (clone + layout round-trip every call), (b) a
//! reused typed [`Plan`] (scratch allocated once, layout round-trip per
//! call), (c) a layout-resident typed session (no per-call clone, no
//! per-call transform — the steady-state hot loop is kernels only), and
//! (d) the same session through the type-erased `DynPlan` — whose
//! `run` must stay within ~2% of the typed session, since the only
//! added cost is one virtual call per invocation — and (e) the same
//! workload submitted as jobs through the `stencil-server` service
//! layer with its plan cache off (`cold_plan`: every job pays builder
//! validation + scratch allocation) vs on (`cached_plan`: the compile
//! is paid once and every later job checks a ready plan out of the
//! LRU). The cold/cached ratio is the service layer's reason to exist;
//! at L1 sizes the cached path should be several times faster.
//!
//! ```sh
//! cargo run --release --bin plan_reuse [-- --save-json] [--smoke] [--threads=N]
//! ```
//!
//! `--smoke` shrinks the sweep to CI size; `--threads=N` applies
//! `Parallelism::Threads(N)` to the plan/session variants (the free
//! function is the paper's sequential accounting and stays at 1).

use std::time::Instant;

use stencil_bench::save::{Row, Value};
use stencil_bench::{gflops, grid1, storage_level, Cli, Scale};
use stencil_core::exec::{Boundary, Parallelism, Plan, Shape};
use stencil_core::{run1_star1, AnyGrid, Method, S1d3p, StencilSpec};
use stencil_server::{JobSpec, Server, ServerConfig};
use stencil_simd::Isa;

/// Best-of-3 wall time for `calls` invocations of `f`.
fn time_calls<F: FnMut()>(calls: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..calls {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-`reps` wall time for each closure, with the closures
/// interleaved *per call* inside every rep (A B C A B C …) and each
/// call timed individually into its closure's accumulator. The
/// boundary-parity gate compares these rows as *ratios*, and on a busy
/// host two back-to-back measurements see different background load —
/// call-level interleaving makes all variants sample essentially the
/// same noise within a rep, so the ratios stay stable even when the
/// absolute times are inflated. The per-call timer overhead (~tens of
/// ns) is paid equally by every variant and cancels out of the ratio.
fn time_calls_interleaved(calls: usize, reps: usize, fs: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; fs.len()];
    let mut acc = vec![0.0f64; fs.len()];
    for _ in 0..reps {
        acc.fill(0.0);
        for _ in 0..calls {
            for (f, a) in fs.iter_mut().zip(acc.iter_mut()) {
                let t0 = Instant::now();
                f();
                *a += t0.elapsed().as_secs_f64();
            }
        }
        for (b, a) in best.iter_mut().zip(acc.iter()) {
            *b = b.min(*a);
        }
    }
    best
}

fn main() {
    stencil_bench::banner(
        "plan_reuse: repeated stepping, free fn vs Plan vs Session vs DynSession (1D3P)",
    );
    let cli = Cli::parse();
    let isa = Isa::detect_best();
    let s = S1d3p::heat();
    let spec = StencilSpec::heat_1d3p();
    let par = match cli.threads() {
        Some(n) => Parallelism::Threads(n),
        None => Parallelism::Off,
    };
    let threads = cli.threads().unwrap_or(1);
    let mut rows: Vec<Row> = Vec::new();

    // Service-layer servers for the cold_plan / cached_plan rows: one
    // with caching disabled (every job compiles), one with the default
    // LRU (each size's plan compiles once, then every job hits). Both
    // live across the whole sweep; the queue bound just needs to admit
    // one rep's pipelined submissions.
    let cold_server = Server::new(
        ServerConfig::default()
            .cache_capacity(0)
            .queue_capacity(256),
    );
    let warm_server = Server::new(ServerConfig::default().queue_capacity(256));

    println!(
        "\n{:<10} {:<6} {:>7} {:>6} {:>12} {:>12} {:>12} {:>12}  {:>9} {:>9}",
        "n",
        "level",
        "chunk",
        "calls",
        "free_fn",
        "plan.run",
        "session",
        "dyn_sess",
        "sess/free",
        "dyn/sess"
    );
    let sweep: &[(usize, usize, usize)] = if cli.scale() == Scale::Smoke {
        // L1 and L3 get the full-size call counts: at 100/6 calls their
        // measured intervals (~0.1 ms / ~2.5 ms) are small enough that
        // timer granularity and scheduler noise flap the boundary-parity
        // check; 400/20 calls keep the ratios stable.
        &[(1_500, 8, 400), (40_000, 8, 30), (500_000, 4, 20)]
    } else {
        &[
            (1_500, 8, 400),
            (40_000, 8, 100),
            (500_000, 4, 20),
            (4_000_000, 2, 6),
        ]
    };
    for &(n, chunk, calls) in sweep {
        let init = grid1(n, 21);
        let method = Method::TransLayout2;

        // (a) legacy free function: clone + transform round-trip per call
        // (now itself routed through the erased path internally).
        let mut g = init.clone();
        let free_s = time_calls(calls, || {
            run1_star1(method, isa, &mut g, &s, chunk).expect("valid run");
        });

        // (b) reused typed plan: scratch held across calls, transforms
        // per call.
        let mut plan = Plan::new(Shape::d1(n))
            .method(method)
            .isa(isa)
            .parallelism(par)
            .star1(s)
            .expect("valid plan");
        let mut g = init.clone();
        let plan_s = time_calls(calls, || {
            plan.run(&mut g, chunk);
        });

        // (c) typed layout-resident session: transforms paid once, zero
        // allocation/transform in the timed loop body — timed interleaved
        // with the boundary sessions below so the parity ratios compare
        // like noise windows. The three sessions hold three live grids,
        // and which *allocation slot* a grid lands in measurably shifts
        // its wall time at cache-edge sizes (page/THP luck), so the whole
        // trio is measured repeatedly with the allocation order rotated.
        // Each variant keeps its minimum for the absolute row; the parity
        // ratio is computed *within* each rotation (both members of a
        // pair saw the same noise there) and the median over the
        // rotations is kept — a rotation where either member sits in
        // the penalized slot lands at an extreme, and the median picks
        // one where neither does.
        const BOUNDARIES: [Boundary; 2] = [Boundary::Periodic, Boundary::Reflect];
        let variants: [Option<Boundary>; 3] = [None, Some(BOUNDARIES[0]), Some(BOUNDARIES[1])];
        let mut trio_best = [f64::INFINITY; 3];
        let mut rot_ratios: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        // Full slot cycles: each variant samples every allocation slot
        // `cycles` times, so the median has enough clean rotations to
        // reject a noise burst spanning one cycle. Small grids measure in
        // microseconds — give them more cycles (they're nearly free) so a
        // burst has to span most of the window to move the median.
        let cycles = if n <= 40_000 { 4 } else { 2 };
        for rot in 0..cycles * variants.len() {
            // Build plan+grid pairs in rotated order so each variant's
            // grid samples every allocation slot across the rotations.
            let order: Vec<usize> = (0..variants.len())
                .map(|i| (i + rot) % variants.len())
                .collect();
            let mut plans = Vec::new();
            let mut grids = Vec::new();
            for &v in order.iter().map(|&i| &variants[i]) {
                let mut b = Plan::new(Shape::d1(n))
                    .method(method)
                    .isa(isa)
                    .parallelism(par);
                if let Some(boundary) = v {
                    b = b.boundary(boundary);
                }
                plans.push(b.star1(s).expect("valid plan"));
                grids.push(init.clone());
            }
            let mut sessions: Vec<_> = plans
                .iter_mut()
                .zip(grids.iter_mut())
                .map(|(p, g)| p.session(g))
                .collect();
            let mut fs: Vec<&mut dyn FnMut()> = Vec::new();
            let mut closures: Vec<_> = sessions
                .iter_mut()
                .map(|sess| move || sess.run(chunk))
                .collect();
            for c in closures.iter_mut() {
                fs.push(c);
            }
            let timed = time_calls_interleaved(calls, 3, &mut fs);
            let mut by_variant = [0.0f64; 3];
            for (slot, secs) in timed.into_iter().enumerate() {
                let v = order[slot];
                by_variant[v] = secs;
                trio_best[v] = trio_best[v].min(secs);
            }
            rot_ratios[0].push(by_variant[1] / by_variant[0]);
            rot_ratios[1].push(by_variant[2] / by_variant[0]);
        }
        let median = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let m = v.len() / 2;
            if v.len().is_multiple_of(2) {
                (v[m - 1] + v[m]) / 2.0
            } else {
                v[m]
            }
        };
        let sess_s = trio_best[0];
        // Boundary rows store `Dirichlet best × median paired ratio`, so
        // the gate's recomputed ratio is exactly the noise-paired median.
        let boundary_s = [
            sess_s * median(&mut rot_ratios[0]),
            sess_s * median(&mut rot_ratios[1]),
        ];

        // (d) the same layout-resident session through the type-erased
        // DynPlan: one virtual call per `run` on top of (c).
        let mut dyn_plan = Plan::new(Shape::d1(n))
            .method(method)
            .isa(isa)
            .parallelism(par)
            .stencil(&spec)
            .expect("valid plan");
        let mut g = init.clone();
        let mut dyn_sess = dyn_plan.session(&mut g);
        let dyn_s = time_calls(calls, || {
            dyn_sess.run(chunk);
        });
        drop(dyn_sess);

        // (e) the f32 dtype family: the same workload at half the
        // element width — typed `star1_elem::<f32>` session and the
        // erased `@f32` session. The typed row is the dtype-speedup
        // numerator bench_gate pairs against (c) (twice the lane width
        // owes ≥1.3x geomean on SIMD hosts); the erased row rides the
        // same ≤2% erasure bar as (d). The two f32 variants are timed
        // interleaved so their overhead ratio samples one noise window.
        let spec32 = spec.clone().with_dtype(stencil_simd::Dtype::F32);
        let init32 = stencil_bench::grid1_f32(n, 21);
        let mut plan32 = Plan::new(Shape::d1(n))
            .method(method)
            .isa(isa)
            .parallelism(par)
            .star1_elem::<f32, _>(s)
            .expect("valid plan");
        let mut g32 = init32.clone();
        let mut dyn_plan32 = Plan::new(Shape::d1(n))
            .method(method)
            .isa(isa)
            .parallelism(par)
            .stencil(&spec32)
            .expect("valid plan");
        let mut ge32 =
            AnyGrid::from_vec_spec_f32(Shape::d1(n), &spec32, init32.interior().to_vec())
                .expect("valid f32 grid");
        let (sess32_s, dyn32_s) = {
            let mut sess32 = plan32.session(&mut g32);
            let mut dyn_sess32 = dyn_plan32.session(&mut ge32);
            let mut a = move || sess32.run(chunk);
            let mut b = move || dyn_sess32.run(chunk);
            let mut fs: Vec<&mut dyn FnMut()> = vec![&mut a, &mut b];
            let timed = time_calls_interleaved(calls, 3, &mut fs);
            (timed[0], timed[1])
        };

        let level = storage_level(2 * 8 * n);
        println!(
            "{:<10} {:<6} {:>7} {:>6} {:>9.2} ms {:>9.2} ms {:>9.2} ms {:>9.2} ms  {:>8.2}x {:>8.3}x",
            n,
            level,
            chunk,
            calls,
            free_s * 1e3,
            plan_s * 1e3,
            sess_s * 1e3,
            dyn_s * 1e3,
            free_s / sess_s,
            dyn_s / sess_s,
        );
        for (variant, secs) in [
            ("free_fn", free_s),
            ("plan_run", plan_s),
            ("session", sess_s),
            ("dyn_session", dyn_s),
        ] {
            rows.push(vec![
                ("n", Value::from(n)),
                ("level", Value::from(level)),
                ("threads", Value::from(threads)),
                ("chunk", Value::from(chunk)),
                ("calls", Value::from(calls)),
                ("variant", Value::from(variant)),
                ("seconds", Value::from(secs)),
                (
                    "gflops",
                    Value::from(gflops(n, chunk * calls, spec.flops_per_point(), secs)),
                ),
            ]);
        }

        println!(
            "{:<10} {:<6} {:>7} {:>6} {:>9} dtype=f32        {:>9.2} ms {:>9.2} ms  {:>8.2}x f64/f32 {:>8.3}x dyn/sess",
            n,
            level,
            chunk,
            calls,
            "",
            sess32_s * 1e3,
            dyn32_s * 1e3,
            sess_s / sess32_s,
            dyn32_s / sess32_s,
        );
        // The f32 rows carry the f64 sibling's identity fields plus a
        // `dtype` marker — bench_gate's dtype-speedup check pairs each
        // with the row sharing the rest of its identity (`level` stays
        // the sibling's 8-byte classification for exactly that reason).
        for (variant, secs) in [("session", sess32_s), ("dyn_session", dyn32_s)] {
            rows.push(vec![
                ("n", Value::from(n)),
                ("level", Value::from(level)),
                ("threads", Value::from(threads)),
                ("chunk", Value::from(chunk)),
                ("calls", Value::from(calls)),
                ("variant", Value::from(variant)),
                ("dtype", Value::from("f32")),
                ("seconds", Value::from(secs)),
                (
                    "gflops",
                    Value::from(gflops(n, chunk * calls, spec.flops_per_point(), secs)),
                ),
            ]);
        }

        // Boundary row family: the same layout-resident session under the
        // refreshed boundaries, timed interleaved with (c) above. The
        // fused halo fast path stages the t+1 edge values in registers so
        // the TL2 session keeps its k = 2 pass; these rows should sit
        // within ~10% of the Dirichlet session (bench_gate's
        // boundary-parity check enforces the ratio).
        for (boundary, secs) in BOUNDARIES.into_iter().zip(boundary_s) {
            println!(
                "{:<10} {:<6} {:>7} {:>6} {:>9} boundary={:<8} {:>9.2} ms  {:>8.3}x vs session",
                n,
                level,
                chunk,
                calls,
                "",
                boundary.name(),
                secs * 1e3,
                secs / sess_s,
            );
            rows.push(vec![
                ("n", Value::from(n)),
                ("level", Value::from(level)),
                ("threads", Value::from(threads)),
                ("chunk", Value::from(chunk)),
                ("calls", Value::from(calls)),
                ("variant", Value::from("session")),
                ("boundary", Value::from(boundary.name())),
                ("seconds", Value::from(secs)),
                (
                    "gflops",
                    Value::from(gflops(n, chunk * calls, spec.flops_per_point(), secs)),
                ),
            ]);
        }

        // (f) the service layer: the same stencil submitted as jobs.
        // The jobs request a 4-thread plan (or `--threads=N` if given):
        // that is the configuration a multi-tenant service actually
        // runs, and it is where plan compilation has real weight — a
        // parallel plan's builder spawns its persistent worker pool, so
        // a cold job pays thread spawn + join on top of validation and
        // scratch allocation, all of which the cache elides. Small
        // per-job step counts keep the sweep cheap relative to that
        // setup; the JobSpecs (grids included) are built outside the
        // timed region and the whole batch is submitted pipelined
        // before the first wait, so the measured interval is dispatcher
        // work, not submit/wake round-trips.
        let chunk_srv = 2;
        let calls_srv = calls.min(200);
        let threads_srv = cli.threads().unwrap_or(4).max(2);
        let mk_jobs = || -> Vec<JobSpec> {
            (0..calls_srv)
                .map(|_| {
                    let grid =
                        AnyGrid::from_vec_spec(Shape::d1(n), &spec, init.interior().to_vec())
                            .expect("valid grid");
                    JobSpec::new("bench", spec.clone(), grid, chunk_srv)
                        .method(method)
                        .parallelism(Parallelism::Threads(threads_srv))
                })
                .collect()
        };
        let time_server = |server: &Server| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let jobs = mk_jobs();
                let t0 = Instant::now();
                let handles: Vec<_> = jobs
                    .into_iter()
                    .map(|j| server.submit(j).expect("queue has room"))
                    .collect();
                for h in handles {
                    h.wait().expect("job ran");
                }
                best = best.min(t0.elapsed().as_secs_f64());
            }
            best
        };
        let cold_s = time_server(&cold_server);
        // Warm the cache (one untimed compile), then measure all-hits.
        for j in mk_jobs().into_iter().take(1) {
            warm_server
                .submit(j)
                .expect("queue has room")
                .wait()
                .expect("job ran");
        }
        let cached_s = time_server(&warm_server);
        println!(
            "{:<10} {:<6} {:>7} {:>6} {:>9} server           {:>9.2} ms {:>9.2} ms  {:>8.2}x cold/cached",
            n,
            level,
            chunk_srv,
            calls_srv,
            "",
            cold_s * 1e3,
            cached_s * 1e3,
            cold_s / cached_s,
        );
        for (variant, secs) in [("cold_plan", cold_s), ("cached_plan", cached_s)] {
            rows.push(vec![
                ("n", Value::from(n)),
                ("level", Value::from(level)),
                ("threads", Value::from(threads_srv)),
                ("chunk", Value::from(chunk_srv)),
                ("calls", Value::from(calls_srv)),
                ("variant", Value::from(variant)),
                ("seconds", Value::from(secs)),
                (
                    "gflops",
                    Value::from(gflops(
                        n,
                        chunk_srv * calls_srv,
                        spec.flops_per_point(),
                        secs,
                    )),
                ),
            ]);
        }
    }
    println!(
        "\n(free_fn clones + transforms every call; plan.run reuses buffers; session \
         additionally stays layout-resident; dyn_session is the erased API over the \
         same session — dyn/sess is the erasure overhead; cold_plan/cached_plan run \
         the workload as stencil-server jobs with the plan cache off/on)"
    );
    let warm_stats = warm_server.cache_stats();
    println!(
        "(server plan cache: {} hits / {} misses, {:.0}% hit rate across the sweep)",
        warm_stats.hits,
        warm_stats.misses,
        100.0 * warm_stats.hit_rate(),
    );
    stencil_bench::save::maybe_save("plan_reuse", &rows);
}
