//! Workspace-level integration tests: the three crates working together
//! through the umbrella prelude and the [`Plan`] engine, plus
//! physics-level sanity checks that don't depend on any reference
//! implementation.

use stencil_lab::prelude::*;
use stencil_simd::AlignedBuf;

#[test]
fn prelude_end_to_end_pipeline() {
    let isa = Isa::detect_best();
    let n = 4096;
    let s = S1d3p::heat();
    let init = Grid1::from_fn(n, 0.0, |i| if i % 97 == 0 { 1.0 } else { 0.0 });

    // untiled transpose-layout, tiled tessellate, tiled split: all equal
    let mut a = init.clone();
    Plan::new(Shape::d1(n))
        .method(Method::TransLayout2)
        .isa(isa)
        .star1(s)
        .unwrap()
        .run(&mut a, 40);
    let mut b = init.clone();
    Plan::new(Shape::d1(n))
        .method(Method::TransLayout2)
        .isa(isa)
        .tiling(Tiling::Tessellate {
            w: [512, 0, 0],
            h: 64,
            threads: 8,
        })
        .star1(s)
        .unwrap()
        .run(&mut b, 40);
    let mut c = init.clone();
    Plan::new(Shape::d1(n))
        .method(Method::Dlt)
        .isa(isa)
        .tiling(Tiling::Split {
            w: 64,
            h: 32,
            threads: 8,
        })
        .star1(s)
        .unwrap()
        .run(&mut c, 40);
    assert_eq!(stencil_lab::core::verify::max_abs_diff1(&a, &b), 0.0);
    assert_eq!(stencil_lab::core::verify::max_abs_diff1(&a, &c), 0.0);
}

#[test]
fn heat_decays_monotonically_toward_boundary_value() {
    // With zero boundaries and normalized positive weights, the max
    // principle holds: max decreases, min increases toward 0. Stepping
    // happens inside one layout-resident session — ten runs, one
    // transpose round-trip... per observation, since reading the interior
    // requires leaving the session.
    let isa = Isa::detect_best();
    let s = S1d3p::heat();
    let mut plan = Plan::new(Shape::d1(2048))
        .method(Method::TransLayout2)
        .isa(isa)
        .star1(s)
        .unwrap();
    let mut g = Grid1::from_fn(2048, 0.0, |i| if i == 1024 { 100.0 } else { 0.0 });
    let mut prev_max = 100.0f64;
    for _ in 0..10 {
        plan.run(&mut g, 4);
        let mx = g.interior().iter().fold(f64::MIN, |m, &x| m.max(x));
        let mn = g.interior().iter().fold(f64::MAX, |m, &x| m.min(x));
        assert!(mx <= prev_max + 1e-12, "max principle violated");
        assert!(mn >= -1e-12, "positivity violated");
        prev_max = mx;
    }
}

#[test]
fn blur_converges_to_constant() {
    // Repeated normalized box blur of a bounded image converges toward a
    // flat field (here bounded by halo = interior mean scale).
    let isa = Isa::detect_best();
    let s = S2d9p::blur();
    let mut g = Grid2::from_fn(96, 64, 1, 0.5, |y, x| ((x + y) % 2) as f64);
    Plan::new(Shape::d2(96, 64))
        .method(Method::TransLayout)
        .isa(isa)
        .box2(s)
        .unwrap()
        .run(&mut g, 200);
    for y in 0..64 {
        for &v in g.row(y) {
            assert!((v - 0.5).abs() < 0.05, "not converged: {v}");
        }
    }
}

#[test]
fn cross_isa_agreement_end_to_end() {
    // AVX2 and AVX-512 paths (when present) must agree bitwise with the
    // portable oracle after a full tiled run.
    let s = S2d5p::heat();
    let init = Grid2::from_fn(130, 40, 1, 0.0, |y, x| ((x * 31 + y * 17) % 101) as f64);
    let mut reference = init.clone();
    Plan::new(Shape::d2(130, 40))
        .method(Method::Scalar)
        .isa(Isa::Portable4)
        .star2(s)
        .unwrap()
        .run(&mut reference, 12);
    for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
        let mut g = init.clone();
        Plan::new(Shape::d2(130, 40))
            .method(Method::TransLayout2)
            .isa(isa)
            .tiling(Tiling::Tessellate {
                w: [48, 16, 0],
                h: 6,
                threads: 4,
            })
            .star2(s)
            .unwrap()
            .run(&mut g, 12);
        assert_eq!(
            stencil_lab::core::verify::max_abs_diff2(&g, &reference),
            0.0,
            "{isa}"
        );
    }
}

#[test]
fn three_d_tiled_matches_untiled_through_prelude() {
    let isa = Isa::detect_best();
    let s = S3d7p::heat();
    let init = Grid3::from_fn(72, 20, 12, 1, 0.0, |z, y, x| {
        ((x + 2 * y + 3 * z) % 7) as f64
    });
    let mut a = init.clone();
    Plan::new(Shape::d3(72, 20, 12))
        .method(Method::MultiLoad)
        .isa(isa)
        .star3(s)
        .unwrap()
        .run(&mut a, 6);
    let mut b = init.clone();
    Plan::new(Shape::d3(72, 20, 12))
        .method(Method::TransLayout2)
        .isa(isa)
        .tiling(Tiling::Tessellate {
            w: [36, 8, 6],
            h: 3,
            threads: 6,
        })
        .star3(s)
        .unwrap()
        .run(&mut b, 6);
    let mut c = init.clone();
    Plan::new(Shape::d3(72, 20, 12))
        .method(Method::Dlt)
        .isa(isa)
        .tiling(Tiling::Split {
            w: 6,
            h: 3,
            threads: 6,
        })
        .star3(s)
        .unwrap()
        .run(&mut c, 6);
    assert_eq!(stencil_lab::core::verify::max_abs_diff3(&a, &b), 0.0);
    assert_eq!(stencil_lab::core::verify::max_abs_diff3(&a, &c), 0.0);
}

#[test]
fn legacy_free_functions_still_agree_with_plan() {
    // The 13 legacy entry points are thin wrappers over Plan; spot-check
    // that the wrapper path stays bit-identical to driving Plan directly.
    let isa = Isa::detect_best();
    let n = 2048;
    let s = S1d3p::heat();
    let init = Grid1::from_fn(n, 0.0, |i| ((i * 13) % 31) as f64);

    let mut via_plan = init.clone();
    Plan::new(Shape::d1(n))
        .method(Method::TransLayout2)
        .isa(isa)
        .star1(s)
        .unwrap()
        .run(&mut via_plan, 24);

    let mut via_legacy = init.clone();
    run1_star1(Method::TransLayout2, isa, &mut via_legacy, &s, 24).unwrap();
    assert_eq!(
        stencil_lab::core::verify::max_abs_diff1(&via_plan, &via_legacy),
        0.0
    );

    let mut via_legacy_tess = init.clone();
    tessellate1_star1(
        Method::TransLayout2,
        isa,
        &mut via_legacy_tess,
        &s,
        24,
        256,
        16,
        4,
    );
    assert_eq!(
        stencil_lab::core::verify::max_abs_diff1(&via_plan, &via_legacy_tess),
        0.0
    );

    let mut via_legacy_split = init.clone();
    split1_star1(isa, &mut via_legacy_split, &s, 24, 32, 8, 4);
    assert_eq!(
        stencil_lab::core::verify::max_abs_diff1(&via_plan, &via_legacy_split),
        0.0
    );
}

#[test]
fn simd_substrate_is_reexported_and_usable() {
    let b = AlignedBuf::from_slice(&[1.0, 2.0, 3.0]);
    assert_eq!(b.as_ptr() as usize % stencil_simd::ALIGN, 0);
    assert_eq!(Isa::detect_best().lanes() % 4, 0);
}
