//! Workspace-level integration tests: the three crates working together
//! through the umbrella prelude, plus physics-level sanity checks that
//! don't depend on any reference implementation.

use stencil_lab::prelude::*;
use stencil_simd::AlignedBuf;

#[test]
fn prelude_end_to_end_pipeline() {
    let isa = Isa::detect_best();
    let n = 4096;
    let s = S1d3p::heat();
    let init = Grid1::from_fn(n, 0.0, |i| if i % 97 == 0 { 1.0 } else { 0.0 });

    // untiled transpose-layout, tiled tessellate, tiled split: all equal
    let mut a = init.clone();
    run1_star1(Method::TransLayout2, isa, &mut a, &s, 40);
    let mut b = init.clone();
    tessellate1_star1(Method::TransLayout2, isa, &mut b, &s, 40, 512, 64, 8);
    let mut c = init.clone();
    split1_star1(isa, &mut c, &s, 40, 64, 32, 8);
    assert_eq!(stencil_lab::core::verify::max_abs_diff1(&a, &b), 0.0);
    assert_eq!(stencil_lab::core::verify::max_abs_diff1(&a, &c), 0.0);
}

#[test]
fn heat_decays_monotonically_toward_boundary_value() {
    // With zero boundaries and normalized positive weights, the max
    // principle holds: max decreases, min increases toward 0.
    let isa = Isa::detect_best();
    let s = S1d3p::heat();
    let mut g = Grid1::from_fn(2048, 0.0, |i| if i == 1024 { 100.0 } else { 0.0 });
    let mut prev_max = 100.0f64;
    for _ in 0..10 {
        run1_star1(Method::TransLayout2, isa, &mut g, &s, 4);
        let mx = g.interior().iter().fold(f64::MIN, |m, &x| m.max(x));
        let mn = g.interior().iter().fold(f64::MAX, |m, &x| m.min(x));
        assert!(mx <= prev_max + 1e-12, "max principle violated");
        assert!(mn >= -1e-12, "positivity violated");
        prev_max = mx;
    }
}

#[test]
fn blur_converges_to_constant() {
    // Repeated normalized box blur of a bounded image converges toward a
    // flat field (here bounded by halo = interior mean scale).
    let isa = Isa::detect_best();
    let s = S2d9p::blur();
    let mut g = Grid2::from_fn(96, 64, 1, 0.5, |y, x| ((x + y) % 2) as f64);
    run2_box(Method::TransLayout, isa, &mut g, &s, 200);
    for y in 0..64 {
        for &v in g.row(y) {
            assert!((v - 0.5).abs() < 0.05, "not converged: {v}");
        }
    }
}

#[test]
fn cross_isa_agreement_end_to_end() {
    // AVX2 and AVX-512 paths (when present) must agree bitwise with the
    // portable oracle after a full tiled run.
    let s = S2d5p::heat();
    let init = Grid2::from_fn(130, 40, 1, 0.0, |y, x| ((x * 31 + y * 17) % 101) as f64);
    let mut reference = init.clone();
    run2_star(Method::Scalar, Isa::Portable4, &mut reference, &s, 12);
    for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
        let mut g = init.clone();
        tessellate2_star(Method::TransLayout2, isa, &mut g, &s, 12, 48, 16, 6, 4);
        assert_eq!(
            stencil_lab::core::verify::max_abs_diff2(&g, &reference),
            0.0,
            "{isa}"
        );
    }
}

#[test]
fn three_d_tiled_matches_untiled_through_prelude() {
    let isa = Isa::detect_best();
    let s = S3d7p::heat();
    let init = Grid3::from_fn(72, 20, 12, 1, 0.0, |z, y, x| ((x + 2 * y + 3 * z) % 7) as f64);
    let mut a = init.clone();
    run3_star(Method::MultiLoad, isa, &mut a, &s, 6);
    let mut b = init.clone();
    tessellate3_star(Method::TransLayout2, isa, &mut b, &s, 6, 36, 8, 6, 3, 6);
    let mut c = init.clone();
    split3_star(isa, &mut c, &s, 6, 6, 3, 6);
    assert_eq!(stencil_lab::core::verify::max_abs_diff3(&a, &b), 0.0);
    assert_eq!(stencil_lab::core::verify::max_abs_diff3(&a, &c), 0.0);
}

#[test]
fn simd_substrate_is_reexported_and_usable() {
    let b = AlignedBuf::from_slice(&[1.0, 2.0, 3.0]);
    assert_eq!(b.as_ptr() as usize % stencil_simd::ALIGN, 0);
    assert_eq!(Isa::detect_best().lanes() % 4, 0);
}
